package uncertain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
)

func region2D(lox, loy, hix, hiy float64) geom.Rect {
	return geom.NewRect(geom.Point{lox, loy}, geom.Point{hix, hiy})
}

func TestValidate(t *testing.T) {
	o := &Object{ID: 1, Region: region2D(0, 0, 10, 10)}
	if err := o.Validate(); err != nil {
		t.Fatalf("region-only object should validate: %v", err)
	}

	o.Instances = []Instance{
		{Pos: geom.Point{1, 1}, Prob: 0.5},
		{Pos: geom.Point{9, 9}, Prob: 0.5},
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("valid instances rejected: %v", err)
	}

	o.Instances[0].Pos = geom.Point{11, 1} // outside region
	if err := o.Validate(); err == nil {
		t.Fatal("instance outside region accepted")
	}

	o.Instances[0].Pos = geom.Point{1, 1}
	o.Instances[0].Prob = 0.9 // sums to 1.4
	if err := o.Validate(); err == nil {
		t.Fatal("probabilities not summing to 1 accepted")
	}

	o.Instances[0].Prob = -0.5
	if err := o.Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestSampleInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	region := region2D(10, 20, 14, 26)
	for _, kind := range []PDFKind{PDFUniform, PDFGaussian} {
		ins := SampleInstances(region, kind, 500, rng)
		if len(ins) != 500 {
			t.Fatalf("got %d instances", len(ins))
		}
		var sum float64
		for _, in := range ins {
			if !region.Contains(in.Pos) {
				t.Fatalf("kind %d: instance %v outside region", kind, in.Pos)
			}
			sum += in.Prob
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("kind %d: probs sum to %g", kind, sum)
		}
	}
}

func TestSampleInstancesGaussianConcentration(t *testing.T) {
	// Gaussian samples should concentrate near the center more than uniform.
	rng := rand.New(rand.NewSource(17))
	region := region2D(0, 0, 100, 100)
	center := region.Center()
	meanDist := func(kind PDFKind) float64 {
		ins := SampleInstances(region, kind, 2000, rng)
		var s float64
		for _, in := range ins {
			s += geom.Dist(in.Pos, center)
		}
		return s / float64(len(ins))
	}
	if g, u := meanDist(PDFGaussian), meanDist(PDFUniform); g >= u {
		t.Errorf("gaussian mean dist %g >= uniform %g", g, u)
	}
}

func TestMinMaxDistDelegation(t *testing.T) {
	o := &Object{ID: 1, Region: region2D(1, 1, 3, 3)}
	p := geom.Point{0, 2}
	if got := o.MinDist(p); got != 1 {
		t.Errorf("MinDist = %g", got)
	}
	if got, want := o.MaxDist(p), math.Sqrt(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist = %g, want %g", got, want)
	}
}

func TestDBAddRemove(t *testing.T) {
	db := NewDB(geom.UnitCube(2, 100))
	for i := 0; i < 10; i++ {
		o := &Object{ID: ID(i), Region: region2D(float64(i), 0, float64(i+1), 1)}
		if err := db.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 10 {
		t.Fatalf("Len = %d", db.Len())
	}
	if err := db.Add(&Object{ID: 3, Region: region2D(0, 0, 1, 1)}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate add: %v", err)
	}
	got, err := db.Remove(3)
	if err != nil || got.ID != 3 {
		t.Fatalf("Remove(3) = %v, %v", got, err)
	}
	if db.Get(3) != nil {
		t.Fatal("removed object still retrievable")
	}
	if _, err := db.Remove(3); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double remove: %v", err)
	}
	// Remaining objects all retrievable with consistent IDs.
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		o := db.Get(ID(i))
		if o == nil || o.ID != ID(i) {
			t.Fatalf("Get(%d) = %v", i, o)
		}
	}
	if db.Len() != 9 {
		t.Fatalf("Len after remove = %d", db.Len())
	}
}

func TestDBDimensionMismatch(t *testing.T) {
	db := NewDB(geom.UnitCube(3, 100))
	err := db.Add(&Object{ID: 1, Region: region2D(0, 0, 1, 1)})
	if err == nil {
		t.Fatal("2D object accepted into 3D database")
	}
}

func TestDBClone(t *testing.T) {
	db := NewDB(geom.UnitCube(2, 100))
	for i := 0; i < 5; i++ {
		_ = db.Add(&Object{ID: ID(i), Region: region2D(float64(i), 0, float64(i+1), 1)})
	}
	c := db.Clone()
	if _, err := c.Remove(2); err != nil {
		t.Fatal(err)
	}
	if db.Get(2) == nil {
		t.Fatal("removal from clone affected original")
	}
	if c.Get(2) != nil {
		t.Fatal("clone removal ineffective")
	}
	if err := c.Add(&Object{ID: 100, Region: region2D(0, 0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if db.Get(100) != nil {
		t.Fatal("addition to clone affected original")
	}
}
