package uvindex

import (
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

// Objects hugging the domain boundary: cell tracing clips rays at the
// domain; queries at corners and edges must still be exact.
func TestBoundaryObjectsAndQueries(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 1000))
	regions := []geom.Rect{
		geom.NewRect(geom.Point{0, 0}, geom.Point{30, 30}),
		geom.NewRect(geom.Point{970, 970}, geom.Point{1000, 1000}),
		geom.NewRect(geom.Point{0, 480}, geom.Point{25, 520}),
		geom.NewRect(geom.Point{480, 480}, geom.Point{520, 520}),
	}
	for i, r := range regions {
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: r})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []geom.Point{
		{0, 0}, {1000, 1000}, {0, 1000}, {1000, 0},
		{0, 500}, {500, 0}, {500, 500},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		queries = append(queries, geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	for _, q := range queries {
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := PossibleNNBruteForce(db, q)
		if len(got) != len(want) {
			t.Fatalf("q=%v: got %d want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("q=%v: mismatch at %d", q, i)
			}
		}
	}
}

// Degenerate point regions: radius-0 circles.
func TestPointCircles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := uncertain.NewDB(geom.UnitCube(2, 500))
	for i := 0; i < 50; i++ {
		p := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: geom.PointRect(p)})
	}
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 100; iter++ {
		q := geom.Point{rng.Float64() * 500, rng.Float64() * 500}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := PossibleNNBruteForce(db, q)
		if len(got) != len(want) {
			t.Fatalf("point circles q=%v: got %d want %d", q, len(got), len(want))
		}
	}
}

// The traced polygon should have the configured number of vertices and all
// inside the domain.
func TestCellPolygonShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDB(rng, 30, 400, 20)
	cfg := testConfig()
	cfg.Angles = 64
	ix, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		poly := ix.Cell(o.ID)
		if len(poly) != 64 {
			t.Fatalf("object %d: %d vertices, want 64", o.ID, len(poly))
		}
		for _, v := range poly {
			if !ix.domain.Expand(1e-6).Contains(v) {
				t.Fatalf("object %d: vertex %v outside domain", o.ID, v)
			}
		}
	}
}
