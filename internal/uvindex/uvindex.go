// Package uvindex re-implements the paper's 2-D comparator, the UV-index
// (Cheng et al., "UV-diagram: a Voronoi diagram for uncertain data",
// ICDE 2010). Uncertainty regions are circles; the UV-cell of an object is
// the region where it can be the nearest neighbor under circle min/max
// distances.
//
// The original system computes exact UV-cell boundaries from hyperbolic arc
// intersections — the expensive step that makes its construction an order of
// magnitude slower than the PV-index's SE algorithm (Fig. 10(g) reports
// 15–25×). We reproduce that cost profile faithfully: construction traces
// each cell boundary by per-angle numeric root finding against all candidate
// bisector curves (the polygon is the UV-diagram artifact), and additionally
// derives a conservative bounding box for indexing via spatial domination on
// the circles' bounding squares. Queries then run exactly like PV-index
// queries: locate the octree leaf, prune by circle min/max distance.
//
// The UV-index supports 2-D data only, mirroring the original's limitation,
// and must be rebuilt from scratch after updates (no incremental path).
package uvindex

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pvoronoi/internal/domination"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/octree"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/rtree"
	"pvoronoi/internal/uncertain"
)

// Circle is a circular uncertainty region.
type Circle struct {
	Center geom.Point
	R      float64
}

// CircleOf returns the circumscribed circle of a rectangular region — how
// rectangle-world datasets are fed to the circle-based UV-index.
func CircleOf(r geom.Rect) Circle {
	c := r.Center()
	return Circle{Center: c, R: geom.Dist(c, r.Hi)}
}

// MinDist is the circle analogue of distmin: max(0, |p−c| − r).
func (c Circle) MinDist(p geom.Point) float64 {
	d := geom.Dist(c.Center, p) - c.R
	if d < 0 {
		return 0
	}
	return d
}

// MaxDist is the circle analogue of distmax: |p−c| + r.
func (c Circle) MaxDist(p geom.Point) float64 {
	return geom.Dist(c.Center, p) + c.R
}

// BoundingSquare returns the axis-parallel square enclosing the circle.
func (c Circle) BoundingSquare() geom.Rect {
	lo := geom.Point{c.Center[0] - c.R, c.Center[1] - c.R}
	hi := geom.Point{c.Center[0] + c.R, c.Center[1] + c.R}
	return geom.Rect{Lo: lo, Hi: hi}
}

// Config parameterizes UV-index construction.
type Config struct {
	// Store is the simulated disk (fresh 4 KB store if nil).
	Store *pagestore.Store
	// MemBudget bounds the primary index's non-leaf memory (default 5 MB).
	MemBudget int
	// Angles is the number of boundary rays traced per UV-cell
	// (default 180) — the UV-diagram computation.
	Angles int
	// Tol is the bisection tolerance for boundary root finding (default 1).
	Tol float64
	// Candidates bounds the neighbor set each cell is traced against
	// (default 60).
	Candidates int
	// MaxDepth bounds the conservative bbox bisection (default 10).
	MaxDepth int
}

// DefaultConfig returns defaults matching the paper's setup. The boundary
// resolution (Angles, Tol, Candidates) governs how faithfully the traced
// polygon reproduces the exact UV-cell — and dominates construction cost,
// exactly as the hyperbolic-arc intersections dominate the original's.
func DefaultConfig() Config {
	return Config{MemBudget: 5 << 20, Angles: 360, Tol: 0.5, Candidates: 120, MaxDepth: 10}
}

// BuildStats reports construction cost.
type BuildStats struct {
	Objects    int
	Total      time.Duration
	SweepTime  time.Duration // UV-cell boundary tracing (the dominant cost)
	BBoxTime   time.Duration // conservative bounding-box derivation
	InsertTime time.Duration
}

// Index is a built UV-index.
type Index struct {
	domain  geom.Rect
	store   *pagestore.Store
	primary *octree.Tree
	circles map[uint32]Circle
	cells   map[uint32][]geom.Point // traced UV-cell polygons
	bboxes  map[uint32]geom.Rect

	Build BuildStats
}

// Build constructs the UV-index over db (2-D only). Rectangular regions are
// replaced by their circumscribed circles.
func Build(db *uncertain.DB, cfg Config) (*Index, error) {
	if db.Dim() != 2 {
		return nil, fmt.Errorf("uvindex: %d-dimensional data unsupported (UV-index is 2-D only)", db.Dim())
	}
	if cfg.Store == nil {
		cfg.Store = pagestore.New(pagestore.DefaultPageSize)
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 5 << 20
	}
	if cfg.Angles <= 0 {
		cfg.Angles = 180
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 60
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 10
	}

	ix := &Index{
		domain:  db.Domain,
		store:   cfg.Store,
		circles: make(map[uint32]Circle, db.Len()),
		cells:   make(map[uint32][]geom.Point, db.Len()),
		bboxes:  make(map[uint32]geom.Rect, db.Len()),
	}
	start := time.Now()

	var err error
	ix.primary, err = octree.New(octree.Config{
		Domain: db.Domain,
		Store:  cfg.Store,
		Lookup: func(id uint32) (geom.Rect, bool) {
			r, ok := ix.bboxes[id]
			return r, ok
		},
		MemBudget: cfg.MemBudget,
	})
	if err != nil {
		return nil, err
	}

	// Index circle bounding squares for neighbor retrieval.
	tree := rtree.New(2, rtree.DefaultFanout)
	for _, o := range db.Objects() {
		c := CircleOf(o.Region)
		ix.circles[uint32(o.ID)] = c
		tree.Insert(rtree.Item{Rect: c.BoundingSquare(), ID: uint32(o.ID)})
	}

	for _, o := range db.Objects() {
		id := uint32(o.ID)
		c := ix.circles[id]
		neighbors := ix.nearNeighbors(tree, id, c, cfg.Candidates)

		t0 := time.Now()
		poly := ix.traceCell(c, neighbors, cfg.Angles, cfg.Tol)
		ix.Build.SweepTime += time.Since(t0)
		ix.cells[id] = poly

		t1 := time.Now()
		bbox := ix.conservativeBBox(c, neighbors, cfg.Tol, cfg.MaxDepth)
		ix.Build.BBoxTime += time.Since(t1)
		ix.bboxes[id] = bbox

		t2 := time.Now()
		if err := ix.primary.Insert(id, c.BoundingSquare(), bbox); err != nil {
			return nil, err
		}
		ix.Build.InsertTime += time.Since(t2)
		ix.Build.Objects++
	}
	ix.Build.Total = time.Since(start)
	return ix, nil
}

// nearNeighbors returns up to k non-overlapping neighbor circles of c.
func (ix *Index) nearNeighbors(tree *rtree.Tree, id uint32, c Circle, k int) []Circle {
	it := rtree.NewNNIter(tree, c.Center, rtree.MinDistTo(c.Center))
	var out []Circle
	for len(out) < k {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		if item.ID == id {
			continue
		}
		n := ix.circles[item.ID]
		// Overlapping circles never dominate anywhere; skip them, as IS does.
		if geom.Dist(n.Center, c.Center) <= n.R+c.R {
			continue
		}
		out = append(out, n)
	}
	return out
}

// inCell reports whether p can have the cell's object as NN among neighbors:
// distmin(o, p) <= min over neighbors of distmax(n, p).
func inCell(c Circle, neighbors []Circle, p geom.Point) bool {
	dmin := c.MinDist(p)
	for _, n := range neighbors {
		if n.MaxDist(p) < dmin {
			return false
		}
	}
	return true
}

// traceCell approximates the UV-cell boundary with one root-finding pass per
// angle: along each ray from the circle center, bisect for the farthest
// point still inside the cell. This stands in for the original's hyperbolic
// arc intersections and has the same cost shape (per-curve numeric work per
// boundary element).
func (ix *Index) traceCell(c Circle, neighbors []Circle, angles int, tol float64) []geom.Point {
	poly := make([]geom.Point, 0, angles)
	for a := 0; a < angles; a++ {
		theta := 2 * math.Pi * float64(a) / float64(angles)
		dir := geom.Point{math.Cos(theta), math.Sin(theta)}
		// Upper bound: distance to the domain boundary along the ray.
		hi := rayDomainExit(ix.domain, c.Center, dir)
		lo := 0.0
		if !inCell(c, neighbors, rayPoint(c.Center, dir, hi)) {
			for hi-lo > tol {
				mid := (lo + hi) / 2
				if inCell(c, neighbors, rayPoint(c.Center, dir, mid)) {
					lo = mid
				} else {
					hi = mid
				}
			}
		}
		poly = append(poly, rayPoint(c.Center, dir, hi))
	}
	return poly
}

func rayPoint(origin geom.Point, dir geom.Point, t float64) geom.Point {
	return geom.Point{origin[0] + dir[0]*t, origin[1] + dir[1]*t}
}

// rayDomainExit returns the parameter t at which the ray leaves the domain.
func rayDomainExit(domain geom.Rect, origin, dir geom.Point) float64 {
	t := math.Inf(1)
	for j := 0; j < 2; j++ {
		if dir[j] > 1e-12 {
			if cand := (domain.Hi[j] - origin[j]) / dir[j]; cand < t {
				t = cand
			}
		} else if dir[j] < -1e-12 {
			if cand := (domain.Lo[j] - origin[j]) / dir[j]; cand < t {
				t = cand
			}
		}
	}
	if math.IsInf(t, 1) || t < 0 {
		return 0
	}
	return t
}

// conservativeBBox shrinks the domain toward the cell with SE-style slab
// bisection, certifying discarded slabs by spatial domination over the
// circles' bounding squares (a bounding square overestimates the dominator's
// max distance and underestimates the target's min distance, so the
// certificate is sound for the circles).
func (ix *Index) conservativeBBox(c Circle, neighbors []Circle, tol float64, maxDepth int) geom.Rect {
	cands := make([]geom.Rect, len(neighbors))
	for i, n := range neighbors {
		cands[i] = n.BoundingSquare()
	}
	target := c.BoundingSquare()
	tester := domination.NewTester(cands, target, maxDepth)

	h := ix.domain.Clone()
	l := target.Clone()
	// Clip l to the domain (regions near the border may poke out).
	if li, ok := l.Intersection(ix.domain); ok {
		l = li
	}
	for j := 0; j < 2; j++ {
		for h.Lo[j] < l.Lo[j]-tol {
			mid := (h.Lo[j] + l.Lo[j]) / 2
			slab := h.Clone()
			slab.Hi[j] = mid
			if tester.RegionPrunable(slab) {
				h.Lo[j] = mid
			} else {
				l.Lo[j] = mid
			}
		}
		for h.Hi[j] > l.Hi[j]+tol {
			mid := (h.Hi[j] + l.Hi[j]) / 2
			slab := h.Clone()
			slab.Lo[j] = mid
			if tester.RegionPrunable(slab) {
				h.Hi[j] = mid
			} else {
				l.Hi[j] = mid
			}
		}
	}
	return h
}

// Candidate is a Step-1 survivor under the circle model.
type Candidate struct {
	ID      uncertain.ID
	Circle  Circle
	MinDist float64
	MaxDist float64
}

// PossibleNN returns the objects with non-zero probability of being q's
// nearest neighbor under the circle uncertainty model.
func (ix *Index) PossibleNN(q geom.Point) ([]Candidate, error) {
	entries, err := ix.primary.PointQuery(q)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, nil
	}
	seen := make(map[uint32]bool, len(entries))
	cands := make([]Candidate, 0, len(entries))
	bestMax := -1.0
	for _, e := range entries {
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		c := ix.circles[e.ID]
		cand := Candidate{
			ID:      uncertain.ID(e.ID),
			Circle:  c,
			MinDist: c.MinDist(q),
			MaxDist: c.MaxDist(q),
		}
		if bestMax < 0 || cand.MaxDist < bestMax {
			bestMax = cand.MaxDist
		}
		cands = append(cands, cand)
	}
	out := cands[:0]
	for _, c := range cands {
		if c.MinDist <= bestMax {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Cell returns the traced UV-cell polygon of an object (the UV-diagram
// artifact), or nil.
func (ix *Index) Cell(id uncertain.ID) []geom.Point { return ix.cells[uint32(id)] }

// BBox returns the conservative cell bounding box used for indexing.
func (ix *Index) BBox(id uncertain.ID) (geom.Rect, bool) {
	r, ok := ix.bboxes[uint32(id)]
	return r, ok
}

// Store exposes the underlying page store for I/O accounting.
func (ix *Index) Store() *pagestore.Store { return ix.store }

// PossibleNNBruteForce is the reference implementation under the circle
// model: o qualifies iff distmin(o, q) <= min over all o' of distmax(o', q).
func PossibleNNBruteForce(db *uncertain.DB, q geom.Point) []uncertain.ID {
	objs := db.Objects()
	if len(objs) == 0 {
		return nil
	}
	best := math.Inf(1)
	circles := make([]Circle, len(objs))
	for i, o := range objs {
		circles[i] = CircleOf(o.Region)
		if d := circles[i].MaxDist(q); d < best {
			best = d
		}
	}
	var out []uncertain.ID
	for i, o := range objs {
		if circles[i].MinDist(q) <= best {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
