package uvindex

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/geom"
	"pvoronoi/internal/uncertain"
)

func randomDB(rng *rand.Rand, n int, span, maxSide float64) *uncertain.DB {
	db := uncertain.NewDB(geom.UnitCube(2, span))
	for i := 0; i < n; i++ {
		lo := geom.Point{rng.Float64() * (span - maxSide), rng.Float64() * (span - maxSide)}
		hi := geom.Point{lo[0] + 1 + rng.Float64()*(maxSide-1), lo[1] + 1 + rng.Float64()*(maxSide-1)}
		_ = db.Add(&uncertain.Object{ID: uncertain.ID(i), Region: geom.NewRect(lo, hi)})
	}
	return db
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Angles = 90
	cfg.Candidates = 30
	cfg.MemBudget = 1 << 18
	return cfg
}

func TestCircleOf(t *testing.T) {
	r := geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2})
	c := CircleOf(r)
	if !c.Center.Equal(geom.Point{1, 1}) {
		t.Fatalf("center = %v", c.Center)
	}
	if math.Abs(c.R-math.Sqrt2) > 1e-12 {
		t.Fatalf("radius = %g", c.R)
	}
	// The circle must contain the rectangle's corners.
	for _, p := range []geom.Point{{0, 0}, {2, 0}, {0, 2}, {2, 2}} {
		if geom.Dist(c.Center, p) > c.R+1e-12 {
			t.Fatalf("corner %v outside circumscribed circle", p)
		}
	}
}

func TestCircleDistances(t *testing.T) {
	c := Circle{Center: geom.Point{0, 0}, R: 2}
	if got := c.MinDist(geom.Point{1, 0}); got != 0 {
		t.Fatalf("MinDist inside = %g", got)
	}
	if got := c.MinDist(geom.Point{5, 0}); got != 3 {
		t.Fatalf("MinDist outside = %g", got)
	}
	if got := c.MaxDist(geom.Point{5, 0}); got != 7 {
		t.Fatalf("MaxDist = %g", got)
	}
	sq := c.BoundingSquare()
	if !sq.Equal(geom.NewRect(geom.Point{-2, -2}, geom.Point{2, 2})) {
		t.Fatalf("BoundingSquare = %v", sq)
	}
}

func TestRejectNon2D(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(3, 100))
	if _, err := Build(db, testConfig()); err == nil {
		t.Fatal("3-D database accepted")
	}
}

// TestQueryMatchesCircleBruteForce: the UV-index must answer Step 1 exactly
// under the circle uncertainty model.
func TestQueryMatchesCircleBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := randomDB(rng, 120, 1000, 35)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 200; iter++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := PossibleNNBruteForce(db, q)
		if len(got) != len(want) {
			t.Fatalf("q=%v: got %d candidates, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("q=%v: got[%d]=%d want %d", q, i, got[i].ID, want[i])
			}
		}
	}
}

// TestBBoxConservative: every point of the true UV-cell (w.r.t. the full
// database) must lie inside the stored bounding box.
func TestBBoxConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := randomDB(rng, 60, 600, 30)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	circles := map[uncertain.ID]Circle{}
	for _, o := range db.Objects() {
		circles[o.ID] = CircleOf(o.Region)
	}
	for _, o := range db.Objects()[:15] {
		bbox, ok := ix.BBox(o.ID)
		if !ok {
			t.Fatalf("no bbox for %d", o.ID)
		}
		me := circles[o.ID]
		for s := 0; s < 500; s++ {
			p := geom.Point{rng.Float64() * 600, rng.Float64() * 600}
			dmin := me.MinDist(p)
			inTrueCell := true
			for _, other := range db.Objects() {
				if other.ID == o.ID {
					continue
				}
				if circles[other.ID].MaxDist(p) < dmin {
					inTrueCell = false
					break
				}
			}
			if inTrueCell && !bbox.Contains(p) {
				t.Fatalf("UV-cell point %v of object %d outside bbox %v", p, o.ID, bbox)
			}
		}
	}
}

func TestCellPolygonInsideCell(t *testing.T) {
	// Each traced polygon vertex should be in (or just past) the cell
	// boundary w.r.t. the candidate neighbors — probe slightly inside.
	rng := rand.New(rand.NewSource(73))
	db := randomDB(rng, 50, 600, 25)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects()[:10] {
		poly := ix.Cell(o.ID)
		if len(poly) == 0 {
			t.Fatalf("no polygon for %d", o.ID)
		}
		c := CircleOf(o.Region)
		inside := 0
		for _, v := range poly {
			// Contract the vertex 2% toward the center.
			p := geom.Point{
				c.Center[0] + (v[0]-c.Center[0])*0.98,
				c.Center[1] + (v[1]-c.Center[1])*0.98,
			}
			if !ix.domain.Contains(p) {
				continue
			}
			// Membership w.r.t. the same neighbor set used in tracing is not
			// exposed; use the full DB (a subset of constraints, so a cell
			// point may fail). Count membership and require a quorum.
			dmin := c.MinDist(p)
			ok := true
			for _, other := range db.Objects() {
				if other.ID == o.ID {
					continue
				}
				if CircleOf(other.Region).MaxDist(p) < dmin {
					ok = false
					break
				}
			}
			if ok {
				inside++
			}
		}
		if inside < len(poly)/2 {
			t.Fatalf("object %d: only %d/%d contracted polygon vertices in cell", o.ID, inside, len(poly))
		}
	}
}

func TestBuildStats(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := randomDB(rng, 40, 500, 25)
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.Build
	if bs.Objects != 40 || bs.Total <= 0 || bs.SweepTime <= 0 {
		t.Fatalf("stats: %+v", bs)
	}
	// The sweep (UV-diagram computation) must dominate construction —
	// that is the effect Fig. 10(g) measures.
	if bs.SweepTime < bs.BBoxTime {
		t.Logf("note: sweep %v < bbox %v (acceptable at tiny scale)", bs.SweepTime, bs.BBoxTime)
	}
}

func TestEmptyDB(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.PossibleNN(geom.Point{50, 50})
	if err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestSingleObject(t *testing.T) {
	db := uncertain.NewDB(geom.UnitCube(2, 100))
	_ = db.Add(&uncertain.Object{ID: 3, Region: geom.NewRect(geom.Point{10, 10}, geom.Point{20, 20})})
	ix, err := Build(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.PossibleNN(geom.Point{90, 90})
	if err != nil || len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("single object: %v %v", got, err)
	}
}
