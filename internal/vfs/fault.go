package vfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Injected fault errors. ErrNoSpace wraps syscall.ENOSPC so errors.Is sees
// the same sentinel a real full disk produces.
var (
	// ErrCrashed is returned by every operation after a crash point fires:
	// the simulated process is dead and nothing further reaches the disk.
	ErrCrashed = fmt.Errorf("vfs: crashed at injected fault point")
	// ErrInjected marks a non-fatal injected failure (a failing fsync, a
	// poisoned file).
	ErrInjected = fmt.Errorf("vfs: injected fault")
	// ErrNoSpace is the injected disk-full error.
	ErrNoSpace = fmt.Errorf("vfs: injected disk full: %w", syscall.ENOSPC)
)

// flip describes one read-path bit flip: files whose path contains Path get
// bit Bit of byte Offset inverted on every ReadFile.
type flip struct {
	Path   string
	Offset int64
	Bit    uint
}

// FaultFS wraps another FS and injects storage faults deterministically.
//
// Mutating operations (create, write, fsync, rename, remove, truncate,
// mkdir, dir fsync) are counted in execution order; CrashAt arms a crash at
// the Nth such operation — a crashing write lands only a torn prefix, any
// other crashing operation does not happen at all, and every operation
// after the crash fails with ErrCrashed, exactly as if the process had died.
// Sweeping N across the full count enumerates every point a real crash
// could hit (the ALICE recipe).
//
// Orthogonal, non-fatal faults model a disk that misbehaves while the
// process lives: SetWriteBudget caps the bytes writable before ENOSPC
// (short write then failure, like a real full disk), PoisonSync makes the
// next fsync of a matching file fail and poisons the file thereafter
// ("fsyncgate" semantics: a failed fsync may have dropped dirty pages, so
// no later write or fsync of that file can be trusted), and FlipBit
// simulates bit rot on the read path. ClearFaults lifts the non-fatal
// faults — the "operator freed the disk" transition degraded-mode serving
// recovers through.
//
// All methods are safe for concurrent use; injection decisions are
// serialized on one mutex, so a single-threaded workload sees a fully
// deterministic fault schedule.
type FaultFS struct {
	base FS

	mu        sync.Mutex
	ops       int64 // mutating operations performed so far
	crashAt   int64 // 1-based op index to crash at; 0 = never
	tornFrac  float64
	crashed   bool
	budget    int64 // remaining writable bytes; < 0 = unlimited
	poisonPat string
	poisoned  map[string]bool
	flips     []flip
}

// NewFaultFS returns a fault injector over base (OS when base is nil) with
// no faults armed.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{base: base, budget: -1, tornFrac: 0.5, poisoned: make(map[string]bool)}
}

// CrashAt arms a crash at the n-th mutating operation (1-based; 0 disarms).
// A crashing write persists only ceil(tornFrac · len) bytes of its buffer.
func (f *FaultFS) CrashAt(n int64, tornFrac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	if tornFrac > 0 && tornFrac < 1 {
		f.tornFrac = tornFrac
	}
}

// OpCount returns the number of mutating operations seen so far — run a
// workload once with no faults armed to learn its fault-point count.
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// SetWriteBudget allows n more bytes of writes before every further write
// fails with ErrNoSpace (n = 0 makes the very next write fail).
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// PoisonSync makes the next Sync of a file whose path contains pat fail and
// poisons that file: all later writes and syncs of it fail too.
func (f *FaultFS) PoisonSync(pat string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.poisonPat = pat
}

// FlipBit arms a read-path bit flip: every ReadFile of a path containing
// pat returns its contents with bit (0-7) of the byte at offset inverted.
func (f *FaultFS) FlipBit(pat string, offset int64, bit uint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flips = append(f.flips, flip{Path: pat, Offset: offset, Bit: bit % 8})
}

// ClearFaults lifts the non-fatal faults (write budget, sync poison,
// armed and already-poisoned files, bit flips). A fired crash is permanent.
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = -1
	f.poisonPat = ""
	f.poisoned = make(map[string]bool)
	f.flips = nil
}

// opGate counts one mutating operation and decides its fate: proceed
// (nil, false), fail and crash (ErrCrashed, true — the caller may still
// land a torn prefix first), or fail because already crashed.
func (f *FaultFS) opGate() (err error, firing bool) {
	if f.crashed {
		return ErrCrashed, false
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.crashed = true
		return ErrCrashed, true
	}
	return nil, false
}

// --- FS interface --------------------------------------------------------

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	err, _ := f.opGate()
	f.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	file, ferr := f.base.Create(name)
	if ferr != nil {
		return nil, ferr
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if f.Crashed() {
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0 {
		f.mu.Lock()
		err, _ := f.opGate()
		f.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("openfile %s: %w", name, err)
		}
	} else if f.Crashed() {
		return nil, fmt.Errorf("openfile %s: %w", name, ErrCrashed)
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, fmt.Errorf("readfile %s: %w", name, ErrCrashed)
	}
	buf, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	for _, fl := range f.flips {
		if strings.Contains(name, fl.Path) && fl.Offset >= 0 && fl.Offset < int64(len(buf)) {
			buf[fl.Offset] ^= 1 << fl.Bit
		}
	}
	f.mu.Unlock()
	return buf, nil
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	err, firing := f.opGate()
	if err != nil {
		f.mu.Unlock()
		if firing {
			// Crash mid-write: a torn prefix reaches the disk.
			f.base.WriteFile(name, data[:torn(len(data), f.tornFrac)], perm)
		}
		return fmt.Errorf("writefile %s: %w", name, err)
	}
	if f.poisoned[name] {
		f.mu.Unlock()
		return fmt.Errorf("writefile %s: poisoned after failed fsync: %w", name, ErrInjected)
	}
	n, serr := f.debit(len(data))
	f.mu.Unlock()
	if serr != nil {
		// A real full disk lands what fits, then errors.
		f.base.WriteFile(name, data[:n], perm)
		return fmt.Errorf("writefile %s: %w", name, serr)
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	return f.mutate("rename", oldpath, func() error { return f.base.Rename(oldpath, newpath) })
}

func (f *FaultFS) Remove(name string) error {
	return f.mutate("remove", name, func() error { return f.base.Remove(name) })
}

func (f *FaultFS) Truncate(name string, size int64) error {
	return f.mutate("truncate", name, func() error { return f.base.Truncate(name, size) })
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.mutate("mkdir", path, func() error { return f.base.MkdirAll(path, perm) })
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	if f.Crashed() {
		return nil, fmt.Errorf("glob %s: %w", pattern, ErrCrashed)
	}
	return f.base.Glob(pattern)
}

func (f *FaultFS) SyncDir(dir string) error {
	return f.mutate("syncdir", dir, func() error { return f.base.SyncDir(dir) })
}

// mutate runs a non-write mutating operation through the op gate: a crash
// at this point means the operation never happened.
func (f *FaultFS) mutate(op, name string, fn func() error) error {
	f.mu.Lock()
	err, _ := f.opGate()
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%s %s: %w", op, name, err)
	}
	return fn()
}

// debit charges n bytes against the write budget, returning how many may
// land and ErrNoSpace when the budget is exhausted. Caller holds f.mu.
func (f *FaultFS) debit(n int) (int, error) {
	if f.budget < 0 {
		return n, nil
	}
	if int64(n) <= f.budget {
		f.budget -= int64(n)
		return n, nil
	}
	allowed := int(f.budget)
	f.budget = 0
	return allowed, ErrNoSpace
}

// torn returns how many of n bytes a crashing write persists.
func torn(n int, frac float64) int {
	t := int(float64(n) * frac)
	if t >= n && n > 0 {
		t = n - 1
	}
	return t
}

// faultFile threads a file's writes and fsyncs back through its FaultFS.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) Name() string { return ff.path }

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.Crashed() {
		return 0, fmt.Errorf("read %s: %w", ff.path, ErrCrashed)
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.fs.Crashed() {
		return 0, fmt.Errorf("seek %s: %w", ff.path, ErrCrashed)
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	err, firing := fs.opGate()
	if err != nil {
		fs.mu.Unlock()
		if firing {
			// Crash mid-write: a torn prefix reaches the disk.
			n := torn(len(p), fs.tornFrac)
			if n > 0 {
				ff.f.Write(p[:n])
			}
			return n, fmt.Errorf("write %s: %w", ff.path, err)
		}
		return 0, fmt.Errorf("write %s: %w", ff.path, err)
	}
	if fs.poisoned[ff.path] {
		fs.mu.Unlock()
		return 0, fmt.Errorf("write %s: poisoned after failed fsync: %w", ff.path, ErrInjected)
	}
	n, serr := fs.debit(len(p))
	fs.mu.Unlock()
	if serr != nil {
		if n > 0 {
			ff.f.Write(p[:n])
		}
		return n, fmt.Errorf("write %s: %w", ff.path, serr)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	err, _ := fs.opGate()
	if err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("fsync %s: %w", ff.path, err)
	}
	if fs.poisoned[ff.path] {
		fs.mu.Unlock()
		return fmt.Errorf("fsync %s: poisoned after failed fsync: %w", ff.path, ErrInjected)
	}
	if fs.poisonPat != "" && strings.Contains(ff.path, fs.poisonPat) {
		// Fsyncgate: the failed fsync may have dropped dirty pages — the
		// file can never be trusted again.
		fs.poisoned[ff.path] = true
		fs.poisonPat = ""
		fs.mu.Unlock()
		return fmt.Errorf("fsync %s: %w", ff.path, ErrInjected)
	}
	fs.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	// Always release the descriptor; report the crash if one fired.
	err := ff.f.Close()
	if ff.fs.Crashed() {
		return fmt.Errorf("close %s: %w", ff.path, ErrCrashed)
	}
	return err
}
