// Package vfs abstracts the filesystem operations the durability stack
// depends on — file creation, writes, fsync, rename, remove, truncate, and
// directory fsync — behind a small interface, so the same write-ahead-log
// and checkpoint code runs against the real OS (OsFS, the default: a pure
// passthrough) or against a deterministic fault injector (FaultFS) that
// exercises torn writes, fsync failures, disk-full, and bit rot without
// needing a real failing disk.
//
// The interface is intentionally minimal: it covers exactly the operations
// whose failure or reordering can lose acknowledged data. Anything that only
// reads derived state goes through ReadFile/Open so bit-rot injection has a
// single choke point.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the handle surface the durability stack needs: sequential reads
// and writes, seeking (the WAL repositions to a segment's committed tail),
// fsync, and close.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem interface the WAL and checkpoint paths run on.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (the WAL reopens segment tails
	// write-only without truncation).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the named file's full contents.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if necessary.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Glob returns the names matching pattern (filepath.Glob semantics).
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory so entries created, renamed, or removed
	// in it survive power loss.
	SyncDir(dir string) error
}

// OsFS is the passthrough FS over the real filesystem. The zero value is
// ready to use.
type OsFS struct{}

// OS is the shared default filesystem.
var OS FS = OsFS{}

func (OsFS) Create(name string) (File, error) { return os.Create(name) }

func (OsFS) Open(name string) (File, error) { return os.Open(name) }

func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OsFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OsFS) Remove(name string) error { return os.Remove(name) }

func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OsFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
