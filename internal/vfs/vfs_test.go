package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOsFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OsFS{}
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sub", "a.txt")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := fs.ReadFile(path)
	if err != nil || string(buf) != "hello" {
		t.Fatalf("read back %q, %v", buf, err)
	}
	if err := fs.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.Glob(filepath.Join(dir, "sub", "*.2"))
	if err != nil || len(names) != 1 {
		t.Fatalf("glob: %v %v", names, err)
	}
	if err := fs.Truncate(path+".2", 2); err != nil {
		t.Fatal(err)
	}
	buf, _ = fs.ReadFile(path + ".2")
	if string(buf) != "he" {
		t.Fatalf("after truncate: %q", buf)
	}
	if err := fs.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFSCrashAtWriteTearsIt proves the crash point model: the crashing
// write lands only a prefix, and every later operation fails with
// ErrCrashed.
func TestFaultFSCrashAtWriteTearsIt(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OsFS{})
	path := filepath.Join(dir, "f")

	f, err := fs.Create(path) // op 1
	if err != nil {
		t.Fatal(err)
	}
	fs.CrashAt(2, 0.5) // the next op — the write — crashes
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := fs.Create(path + "2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := fs.Rename(path, path+"3"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	// On-disk state: the torn prefix, nothing else.
	buf, err := os.ReadFile(path)
	if err != nil || string(buf) != "01234" {
		t.Fatalf("on-disk %q, %v", buf, err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() false after firing")
	}
}

// TestFaultFSCrashAtRenameSkipsIt proves a crashing non-write op does not
// happen at all.
func TestFaultFSCrashAtRenameSkipsIt(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	path := filepath.Join(dir, "f")
	if err := fs.WriteFile(path, []byte("x"), 0o644); err != nil { // op 1
		t.Fatal(err)
	}
	fs.CrashAt(2, 0)
	if err := fs.Rename(path, path+".new"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("original vanished: %v", err)
	}
	if _, err := os.Stat(path + ".new"); !os.IsNotExist(err) {
		t.Fatalf("rename happened despite crash: %v", err)
	}
}

func TestFaultFSOpCountDeterminism(t *testing.T) {
	run := func(fs FS) {
		dir := t.TempDir()
		f, _ := fs.Create(filepath.Join(dir, "a"))
		f.Write([]byte("abc"))
		f.Sync()
		f.Close()
		fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
		fs.SyncDir(dir)
		fs.Remove(filepath.Join(dir, "b"))
	}
	a, b := NewFaultFS(nil), NewFaultFS(nil)
	run(a)
	run(b)
	if a.OpCount() != b.OpCount() || a.OpCount() == 0 {
		t.Fatalf("op counts differ: %d vs %d", a.OpCount(), b.OpCount())
	}
}

// TestFaultFSWriteBudget models ENOSPC: what fits lands, the rest fails,
// and clearing the fault re-opens the disk.
func TestFaultFSWriteBudget(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	path := filepath.Join(dir, "f")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetWriteBudget(4)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 4 {
		t.Fatalf("short write landed %d bytes, want 4", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("budget exhausted but write passed: %v", err)
	}
	fs.ClearFaults()
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("write after ClearFaults: %v", err)
	}
	f.Close()
}

// TestFaultFSSyncPoison models fsyncgate: the armed fsync fails once, and
// the file stays poisoned for writes and syncs afterward.
func TestFaultFSSyncPoison(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	f, err := fs.Create(filepath.Join(dir, "seg-1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs.Create(filepath.Join(dir, "other"))
	if err != nil {
		t.Fatal(err)
	}
	fs.PoisonSync("seg-")
	if err := g.Sync(); err != nil {
		t.Fatalf("unmatched file's sync failed: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write to poisoned file: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync of poisoned file: %v", err)
	}
	fs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after ClearFaults: %v", err)
	}
	f.Close()
	g.Close()
}

func TestFaultFSBitFlip(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	path := filepath.Join(dir, "ckpt-1.db")
	if err := fs.WriteFile(path, []byte{0x00, 0xFF, 0x0F}, 0o644); err != nil {
		t.Fatal(err)
	}
	fs.FlipBit("ckpt-", 1, 3)
	buf, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x00 || buf[1] != 0xF7 || buf[2] != 0x0F {
		t.Fatalf("flip wrong: % x", buf)
	}
	// The file on disk is untouched — rot is a read-path phenomenon here.
	raw, _ := os.ReadFile(path)
	if raw[1] != 0xFF {
		t.Fatalf("on-disk byte mutated: % x", raw)
	}
}
