// Package wal implements the write-ahead log of the durable update path: an
// append-only, CRC-checked, length-prefixed record log with segment rotation.
//
// Writers append batches of records — one commit is one buffered write plus
// one fsync, however many records it carries, which is what makes group
// commit amortize durability cost across a batch. Readers replay records in
// sequence order and stop cleanly at a torn tail: a record that was cut short
// by a crash (truncated frame, bad CRC, impossible length) terminates replay
// without error, exactly as if the crash had happened an instant earlier.
//
// On-disk layout: a directory of segment files seg-<n>.wal, each starting
// with an 8-byte magic followed by frames of
//
//	length uint32 | crc32(IEEE) uint32 | type uint8 | seq uint64 | payload
//
// where length covers type+seq+payload and the CRC covers the same bytes.
// A commit never spans segments (rotation happens between commits), so torn
// frames can only appear at the tail of the newest segment.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pvoronoi/internal/vfs"
)

// Type tags a log record.
type Type uint8

const (
	// TypeInsert records an object insertion (payload: encoded object).
	TypeInsert Type = 1
	// TypeDelete records an object deletion (payload: encoded ID).
	TypeDelete Type = 2
	// TypeCheckpoint marks a completed checkpoint (payload: the
	// checkpoint's name, informational only). Replay skips it; it exists so
	// the log itself records the checkpoint lifecycle.
	TypeCheckpoint Type = 3
	// TypeCommit seals a group commit: it is the final record of every
	// batch Append issued by the update path. Replay buffers update records
	// and only surfaces them when their commit record arrives, so a torn
	// group commit — some of a batch's frames durable, the rest lost — is
	// discarded whole instead of resurrecting half a batch.
	TypeCommit Type = 4
)

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Type    Type
	Payload []byte
}

// Entry is one record to append (the sequence number is assigned by the log).
type Entry struct {
	Type    Type
	Payload []byte
}

// Options configures a log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 8 MB). A
	// segment may exceed it by the size of the final commit; rotation
	// happens between commits.
	SegmentSize int64
	// NoSync skips the fsync on commit (for benchmarks measuring the
	// fsync's cost against its absence). Durability is lost on crash.
	NoSync bool
	// FS is the filesystem the log runs on (default vfs.OS). Tests swap in
	// a vfs.FaultFS to exercise torn writes, failing fsyncs, and disk-full
	// conditions deterministically.
	FS vfs.FS
	// Sealed declares that every acknowledged append ends in a TypeCommit
	// or TypeCheckpoint record (the durable update path's invariant: batches
	// are sealed by a commit, checkpoint markers are their own barrier).
	// With Sealed set, Open truncates any intact frames past the last such
	// barrier in the newest segment: they are the update records of a group
	// commit whose sealing record never reached disk — a torn write that
	// happened to end on a frame boundary — and were therefore never
	// acknowledged. Leaving them in place would be worse than dropping them:
	// the next batch appends after them, and the next boot's replay would
	// buffer them into the same pending window as that batch's commit,
	// resurrecting a torn batch that a previous recovery already reported
	// dropped. The truncation is counted in OpenStats.UncommittedRecords.
	Sealed bool
}

// DefaultSegmentSize is the default rotation threshold.
const DefaultSegmentSize = 8 << 20

const (
	segMagic   = "PVWAL001"
	frameHdr   = 4 + 4 + 1 + 8 // length + crc + type + seq
	maxPayload = 1 << 30       // sanity bound; larger lengths mean corruption
)

// Stats counts the log's lifetime activity.
type Stats struct {
	Appends  int64 // records appended
	Commits  int64 // append calls (one buffered write each)
	Syncs    int64 // fsyncs issued
	Bytes    int64 // frame bytes written
	Segments int   // segment files currently on disk
}

// OpenStats describes what Open had to repair or abandon while scanning the
// existing segments — the loud part of "never silently lose an acked
// write".
type OpenStats struct {
	// TornBytes is how many trailing bytes of the newest segment were
	// discarded (a crash artifact: a commit that never finished).
	TornBytes int64
	// DroppedRecords counts intact records found BEYOND the first corrupt
	// frame of the newest segment. Replay must stop at the first bad
	// record — frame boundaries past it cannot be trusted transactionally —
	// so these records, though individually CRC-valid, are dropped. A
	// non-zero value means acknowledged writes were lost to corruption
	// (bit rot, not a crash) and the caller should surface it.
	DroppedRecords int
	// UncommittedRecords counts intact frames truncated from the newest
	// segment's tail because no TypeCommit/TypeCheckpoint barrier followed
	// them (Options.Sealed only): a group commit torn exactly on a frame
	// boundary. These records were never acknowledged — truncating them is
	// crash repair, not data loss — but the count is surfaced so recovery
	// can report it.
	UncommittedRecords int
}

// segment is the in-memory index of one on-disk segment file.
type segment struct {
	index    int // file ordinal (monotonic, never reused)
	path     string
	firstSeq uint64 // 0 when the segment holds no records yet
	lastSeq  uint64
	size     int64
}

// Log is an append-only record log. It is safe for concurrent use; appends
// are serialized internally.
type Log struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	fs        vfs.FS
	segments  []segment // ordered by index; last is the active one
	f         vfs.File  // active segment, positioned at its tail
	nextSeq   uint64
	stats     Stats
	openStats OpenStats
	closed    bool
	// failed is set when a write error could not be rolled back: the file
	// may end in a partial frame, so accepting further appends would put
	// acknowledged records behind garbage that replay treats as the torn
	// tail. A failed log rejects all appends (fail-stop) until Rearm
	// rotates it onto a fresh segment.
	failed bool
	// errored is the softer sticky flag: the last append failed (even if
	// it rolled back cleanly). Cleared by a successful append or Rearm;
	// Healthy reports both, so a checkpoint can decide to rotate away from
	// a file whose fsync can no longer be trusted.
	errored bool
}

// Open opens (or creates) the log in dir. Every existing segment is scanned
// and CRC-verified; a torn frame at the tail of the newest segment is
// discarded by truncation so subsequent appends extend a clean log. A
// corrupt frame anywhere else is a hard error — that is data loss, not a
// crash artifact.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, nextSeq: 1}

	names, err := l.fs.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for i, name := range names {
		seg := segment{path: name}
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.wal", &seg.index); err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q", name)
		}
		last := i == len(names)-1
		drop, err := l.scanSegment(&seg, last)
		if err != nil {
			return nil, err
		}
		if drop {
			if err := l.fs.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: removing torn segment %s: %w", seg.path, err)
			}
			if err := l.fs.SyncDir(dir); err != nil {
				return nil, err
			}
			continue
		}
		if seg.lastSeq > 0 {
			l.nextSeq = seg.lastSeq + 1
		}
		l.segments = append(l.segments, seg)
	}
	if len(l.segments) == 0 {
		if err := l.addSegment(0); err != nil {
			return nil, err
		}
	} else {
		tail := &l.segments[len(l.segments)-1]
		f, err := l.fs.OpenFile(tail.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
	}
	return l, nil
}

// scanSegment validates seg's frames, filling its seq range and valid size.
// For the last segment, everything from the first bad frame on is truncated
// away: a frame cut short by a crash is the expected torn tail, while a
// CRC-corrupt frame with intact frames behind it is bit rot — replay must
// still stop at the first bad record (frame boundaries past it cannot be
// trusted transactionally), but the intact records beyond it are counted
// into OpenStats.DroppedRecords so the loss is loud, never silent. Earlier
// segments must be fully intact.
func (l *Log) scanSegment(seg *segment, last bool) (drop bool, err error) {
	buf, err := l.fs.ReadFile(seg.path)
	if err != nil {
		return false, err
	}
	if last && len(buf) < len(segMagic) {
		// A crash during segment creation leaves a file shorter than the
		// magic: no frame could have been acked into it, so discard it.
		return true, nil
	}
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		return false, fmt.Errorf("wal: %s: bad segment magic", seg.path)
	}
	off := int64(len(segMagic))
	data := buf[off:]
	// Sealed logs end every acknowledged append with a commit/checkpoint
	// barrier; track where the last sealed prefix ends so trailing intact
	// frames with no barrier behind them can be truncated as a torn group
	// commit that happened to end on a frame boundary.
	sealedOff := off
	sealedSeq := uint64(0)
	unsealed := 0
	for len(data) > 0 {
		rec, n, ok := parseFrame(data)
		if !ok {
			if !last {
				return false, fmt.Errorf("wal: %s: corrupt frame at offset %d in non-final segment", seg.path, off)
			}
			// Count any intact records stranded beyond the bad frame, then
			// discard everything from it on.
			l.openStats.DroppedRecords += countIntactBeyond(data)
			l.openStats.TornBytes += int64(len(data))
			if err := l.fs.Truncate(seg.path, off); err != nil {
				return false, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			break
		}
		if seg.firstSeq == 0 {
			seg.firstSeq = rec.Seq
		}
		seg.lastSeq = rec.Seq
		off += int64(n)
		data = data[n:]
		if rec.Type == TypeCommit || rec.Type == TypeCheckpoint {
			sealedOff, sealedSeq, unsealed = off, rec.Seq, 0
		} else {
			unsealed++
		}
	}
	seg.size = off
	if l.opts.Sealed && last && unsealed > 0 {
		l.openStats.UncommittedRecords += unsealed
		l.openStats.TornBytes += off - sealedOff
		if err := l.fs.Truncate(seg.path, sealedOff); err != nil {
			return false, fmt.Errorf("wal: truncating uncommitted tail of %s: %w", seg.path, err)
		}
		seg.size = sealedOff
		seg.lastSeq = sealedSeq
		if sealedSeq == 0 {
			seg.firstSeq = 0
		}
	}
	return false, nil
}

// countIntactBeyond walks frames starting at a corrupt one, skipping over
// it by its length header when that is still plausible, and counts the
// CRC-valid records found after it. Best-effort: a mangled length field
// ends the walk (the tail is then indistinguishable from a torn write).
func countIntactBeyond(data []byte) int {
	// Step over the corrupt frame itself, if its header still frames it.
	n, structOK := frameSpan(data)
	if !structOK {
		return 0
	}
	dropped := 0
	data = data[n:]
	for len(data) > 0 {
		n, structOK := frameSpan(data)
		if !structOK {
			break
		}
		if _, _, ok := parseFrame(data); ok {
			dropped++
		}
		data = data[n:]
	}
	return dropped
}

// frameSpan reports the full size of the frame at the head of data going by
// its length header alone, without checking the CRC.
func frameSpan(data []byte) (int, bool) {
	if len(data) < frameHdr {
		return 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length < 1+8 || length > maxPayload {
		return 0, false
	}
	total := 8 + int(length)
	if len(data) < total {
		return 0, false
	}
	return total, true
}

// parseFrame decodes one frame from data, reporting its full size and
// whether it is intact.
func parseFrame(data []byte) (Record, int, bool) {
	if len(data) < frameHdr {
		return Record{}, 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length < 1+8 || length > maxPayload {
		return Record{}, 0, false
	}
	total := 8 + int(length)
	if len(data) < total {
		return Record{}, 0, false
	}
	body := data[8:total]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, false
	}
	rec := Record{
		Type:    Type(body[0]),
		Seq:     binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}
	return rec, total, true
}

// addSegment creates and activates a fresh segment with the given index.
// The directory is fsynced too: a segment whose data is durable but whose
// directory entry is not would silently vanish on power loss, taking its
// acknowledged commits with it.
func (l *Log) addSegment(index int) error {
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", index))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// On any failure past the create, remove the partial file so a retry
	// (e.g. Rearm after the disk frees up) can recreate it with O_EXCL.
	fail := func(err error) error {
		f.Close()
		l.fs.Remove(path)
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return fail(err)
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fail(err)
		}
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.segments = append(l.segments, segment{index: index, path: path, size: int64(len(segMagic))})
	return nil
}

// Append commits the entries as one group: all frames are written with a
// single buffered write and made durable with a single fsync (unless NoSync).
// It returns the sequence numbers assigned to the first and last entry.
// Appending no entries is a no-op.
func (l *Log) Append(entries ...Entry) (first, last uint64, err error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, fmt.Errorf("wal: append on closed log")
	}
	if l.failed {
		return 0, 0, fmt.Errorf("wal: log is failed after an unrecoverable write error")
	}

	// Rotation happens *before* a commit, never after one: once a batch is
	// durably written and fsynced it must be reported as committed, so a
	// failure to open the next segment may only fail the commit it was
	// about to receive (nothing is written yet at this point).
	if tail := &l.segments[len(l.segments)-1]; tail.size >= l.opts.SegmentSize {
		if err := l.addSegment(tail.index + 1); err != nil {
			return 0, 0, fmt.Errorf("wal: rotating segment: %w", err)
		}
	}

	first = l.nextSeq
	var buf []byte
	for _, e := range entries {
		body := make([]byte, 1+8+len(e.Payload))
		body[0] = byte(e.Type)
		binary.LittleEndian.PutUint64(body[1:9], l.nextSeq)
		copy(body[9:], e.Payload)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
		buf = append(buf, hdr[:]...)
		buf = append(buf, body...)
		l.nextSeq++
	}
	last = l.nextSeq - 1

	if _, err := l.f.Write(buf); err != nil {
		l.rollback(first)
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.rollback(first)
			return 0, 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.stats.Syncs++
	}
	l.errored = false

	tail := &l.segments[len(l.segments)-1]
	if tail.firstSeq == 0 {
		tail.firstSeq = first
	}
	tail.lastSeq = last
	tail.size += int64(len(buf))
	l.stats.Appends += int64(len(entries))
	l.stats.Commits++
	l.stats.Bytes += int64(len(buf))
	return first, last, nil
}

// rollback restores the active segment to its last committed size after a
// failed write, so the file cannot end in a partial frame that later
// appends would bury (replay would stop at the garbage and silently drop
// them). If the truncate itself fails, the log fail-stops: every further
// append is rejected until Rearm. Callers hold l.mu and roll nextSeq back
// to first.
func (l *Log) rollback(first uint64) {
	l.nextSeq = first
	l.errored = true
	tail := &l.segments[len(l.segments)-1]
	if err := l.fs.Truncate(tail.path, tail.size); err != nil {
		l.failed = true
		return
	}
	if _, err := l.f.Seek(tail.size, io.SeekStart); err != nil {
		l.failed = true
	}
}

// Healthy reports whether the log can be expected to accept the next
// append: false after a fail-stop (failed) and after any append error whose
// rollback succeeded but whose file (e.g. a poisoned post-fsync-failure
// handle) should no longer be trusted.
func (l *Log) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.failed && !l.errored && !l.closed
}

// Rearm recovers a failed or errored log by abandoning its active segment:
// any unrollbacked garbage tail is truncated away (committed records are
// preserved — they end exactly at the segment's recorded size), a fresh
// segment is created and becomes the append target, and the failure flags
// clear. It is the re-entry point after the underlying fault is gone — disk
// space freed, a poisoned file left behind ("fsyncgate" recovery rotates
// files, it never retries an fsync that already failed). If the filesystem
// is still faulty, Rearm fails and the log stays fail-stopped.
func (l *Log) Rearm() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: rearm on closed log")
	}
	if !l.failed && !l.errored {
		return nil
	}
	tail := &l.segments[len(l.segments)-1]
	if err := l.fs.Truncate(tail.path, tail.size); err != nil {
		return fmt.Errorf("wal: rearm: truncating garbage tail of %s: %w", tail.path, err)
	}
	if err := l.addSegment(tail.index + 1); err != nil {
		return fmt.Errorf("wal: rearm: %w", err)
	}
	l.failed = false
	l.errored = false
	return nil
}

// Sync forces an fsync of the active segment (useful after NoSync appends).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.Syncs++
	return nil
}

// Replay calls fn for every intact record with Seq >= from, in sequence
// order. A torn frame at the tail of the newest segment ends replay cleanly;
// a corrupt frame anywhere else is an error. The payload passed to fn is
// only valid during the call.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()

	for i, seg := range segs {
		if seg.lastSeq != 0 && seg.lastSeq < from {
			continue
		}
		buf, err := l.fs.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
			return fmt.Errorf("wal: %s: bad segment magic", seg.path)
		}
		data := buf[len(segMagic):]
		off := int64(len(segMagic))
		for len(data) > 0 {
			rec, n, ok := parseFrame(data)
			if !ok {
				if i != len(segs)-1 {
					return fmt.Errorf("wal: %s: corrupt frame at offset %d in non-final segment", seg.path, off)
				}
				return nil // torn tail: clean stop
			}
			if rec.Seq >= from {
				if err := fn(rec); err != nil {
					return err
				}
			}
			off += int64(n)
			data = data[n:]
		}
	}
	return nil
}

// LastSeq returns the sequence number of the most recently appended record
// (0 for an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq returns the lowest sequence number still present in the log
// (0 when the log holds no records). A checkpoint at seq S can only serve
// as a recovery base when FirstSeq() <= S+1 or the log is empty — anything
// else means the records between S and the log's head were truncated away.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segments {
		if seg.firstSeq != 0 {
			return seg.firstSeq
		}
	}
	return 0
}

// OpenStats reports what Open repaired or dropped while scanning.
func (l *Log) OpenStats() OpenStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openStats
}

// TruncateBefore removes every sealed segment whose records all have
// sequence numbers below seq — the space-reclaim step after a checkpoint at
// seq-1. The active segment is never removed. The directory is fsynced
// after any removal: an unsynced removal can be resurrected by a crash, and
// worse, journal reordering could persist the removal of a segment while
// losing a rename that was supposed to supersede it.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := false
	kept := l.segments[:0]
	for i, seg := range l.segments {
		active := i == len(l.segments)-1
		if !active && seg.lastSeq != 0 && seg.lastSeq < seq && seg.firstSeq != 0 {
			if err := l.fs.Remove(seg.path); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	if removed && !l.opts.NoSync {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Segments = len(l.segments)
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment. The log is unusable afterward.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
