// Package wal implements the write-ahead log of the durable update path: an
// append-only, CRC-checked, length-prefixed record log with segment rotation.
//
// Writers append batches of records — one commit is one buffered write plus
// one fsync, however many records it carries, which is what makes group
// commit amortize durability cost across a batch. Readers replay records in
// sequence order and stop cleanly at a torn tail: a record that was cut short
// by a crash (truncated frame, bad CRC, impossible length) terminates replay
// without error, exactly as if the crash had happened an instant earlier.
//
// On-disk layout: a directory of segment files seg-<n>.wal, each starting
// with an 8-byte magic followed by frames of
//
//	length uint32 | crc32(IEEE) uint32 | type uint8 | seq uint64 | payload
//
// where length covers type+seq+payload and the CRC covers the same bytes.
// A commit never spans segments (rotation happens between commits), so torn
// frames can only appear at the tail of the newest segment.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Type tags a log record.
type Type uint8

const (
	// TypeInsert records an object insertion (payload: encoded object).
	TypeInsert Type = 1
	// TypeDelete records an object deletion (payload: encoded ID).
	TypeDelete Type = 2
	// TypeCheckpoint marks a completed checkpoint (payload: the
	// checkpoint's name, informational only). Replay skips it; it exists so
	// the log itself records the checkpoint lifecycle.
	TypeCheckpoint Type = 3
)

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Type    Type
	Payload []byte
}

// Entry is one record to append (the sequence number is assigned by the log).
type Entry struct {
	Type    Type
	Payload []byte
}

// Options configures a log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 8 MB). A
	// segment may exceed it by the size of the final commit; rotation
	// happens between commits.
	SegmentSize int64
	// NoSync skips the fsync on commit (for benchmarks measuring the
	// fsync's cost against its absence). Durability is lost on crash.
	NoSync bool
}

// DefaultSegmentSize is the default rotation threshold.
const DefaultSegmentSize = 8 << 20

const (
	segMagic   = "PVWAL001"
	frameHdr   = 4 + 4 + 1 + 8 // length + crc + type + seq
	maxPayload = 1 << 30       // sanity bound; larger lengths mean corruption
)

// Stats counts the log's lifetime activity.
type Stats struct {
	Appends  int64 // records appended
	Commits  int64 // append calls (one buffered write each)
	Syncs    int64 // fsyncs issued
	Bytes    int64 // frame bytes written
	Segments int   // segment files currently on disk
}

// segment is the in-memory index of one on-disk segment file.
type segment struct {
	index    int // file ordinal (monotonic, never reused)
	path     string
	firstSeq uint64 // 0 when the segment holds no records yet
	lastSeq  uint64
	size     int64
}

// Log is an append-only record log. It is safe for concurrent use; appends
// are serialized internally.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	segments []segment // ordered by index; last is the active one
	f        *os.File  // active segment, positioned at its tail
	nextSeq  uint64
	stats    Stats
	closed   bool
	// failed is set when a write error could not be rolled back: the file
	// may end in a partial frame, so accepting further appends would put
	// acknowledged records behind garbage that replay treats as the torn
	// tail. A failed log rejects all appends (fail-stop).
	failed bool
}

// Open opens (or creates) the log in dir. Every existing segment is scanned
// and CRC-verified; a torn frame at the tail of the newest segment is
// discarded by truncation so subsequent appends extend a clean log. A
// corrupt frame anywhere else is a hard error — that is data loss, not a
// crash artifact.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for i, name := range names {
		seg := segment{path: name}
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.wal", &seg.index); err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q", name)
		}
		last := i == len(names)-1
		if err := l.scanSegment(&seg, last); err != nil {
			return nil, err
		}
		if seg.lastSeq > 0 {
			l.nextSeq = seg.lastSeq + 1
		}
		l.segments = append(l.segments, seg)
	}
	if len(l.segments) == 0 {
		if err := l.addSegment(0); err != nil {
			return nil, err
		}
	} else {
		tail := &l.segments[len(l.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
	}
	return l, nil
}

// scanSegment validates seg's frames, filling its seq range and valid size.
// For the last segment a torn tail is truncated away; earlier segments must
// be fully intact.
func (l *Log) scanSegment(seg *segment, last bool) error {
	buf, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		return fmt.Errorf("wal: %s: bad segment magic", seg.path)
	}
	off := int64(len(segMagic))
	data := buf[off:]
	for len(data) > 0 {
		rec, n, ok := parseFrame(data)
		if !ok {
			if !last {
				return fmt.Errorf("wal: %s: corrupt frame at offset %d in non-final segment", seg.path, off)
			}
			// Torn tail of the newest segment: discard it.
			if err := os.Truncate(seg.path, off); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			break
		}
		if seg.firstSeq == 0 {
			seg.firstSeq = rec.Seq
		}
		seg.lastSeq = rec.Seq
		off += int64(n)
		data = data[n:]
	}
	seg.size = off
	return nil
}

// parseFrame decodes one frame from data, reporting its full size and
// whether it is intact.
func parseFrame(data []byte) (Record, int, bool) {
	if len(data) < frameHdr {
		return Record{}, 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length < 1+8 || length > maxPayload {
		return Record{}, 0, false
	}
	total := 8 + int(length)
	if len(data) < total {
		return Record{}, 0, false
	}
	body := data[8:total]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, false
	}
	rec := Record{
		Type:    Type(body[0]),
		Seq:     binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}
	return rec, total, true
}

// addSegment creates and activates a fresh segment with the given index.
// The directory is fsynced too: a segment whose data is durable but whose
// directory entry is not would silently vanish on power loss, taking its
// acknowledged commits with it.
func (l *Log) addSegment(index int) error {
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.segments = append(l.segments, segment{index: index, path: path, size: int64(len(segMagic))})
	return nil
}

// syncDir fsyncs a directory so entries created in it survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Append commits the entries as one group: all frames are written with a
// single buffered write and made durable with a single fsync (unless NoSync).
// It returns the sequence numbers assigned to the first and last entry.
// Appending no entries is a no-op.
func (l *Log) Append(entries ...Entry) (first, last uint64, err error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, fmt.Errorf("wal: append on closed log")
	}
	if l.failed {
		return 0, 0, fmt.Errorf("wal: log is failed after an unrecoverable write error")
	}

	// Rotation happens *before* a commit, never after one: once a batch is
	// durably written and fsynced it must be reported as committed, so a
	// failure to open the next segment may only fail the commit it was
	// about to receive (nothing is written yet at this point).
	if tail := &l.segments[len(l.segments)-1]; tail.size >= l.opts.SegmentSize {
		if err := l.addSegment(tail.index + 1); err != nil {
			return 0, 0, fmt.Errorf("wal: rotating segment: %w", err)
		}
	}

	first = l.nextSeq
	var buf []byte
	for _, e := range entries {
		body := make([]byte, 1+8+len(e.Payload))
		body[0] = byte(e.Type)
		binary.LittleEndian.PutUint64(body[1:9], l.nextSeq)
		copy(body[9:], e.Payload)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
		buf = append(buf, hdr[:]...)
		buf = append(buf, body...)
		l.nextSeq++
	}
	last = l.nextSeq - 1

	if _, err := l.f.Write(buf); err != nil {
		l.rollback(first)
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.rollback(first)
			return 0, 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.stats.Syncs++
	}

	tail := &l.segments[len(l.segments)-1]
	if tail.firstSeq == 0 {
		tail.firstSeq = first
	}
	tail.lastSeq = last
	tail.size += int64(len(buf))
	l.stats.Appends += int64(len(entries))
	l.stats.Commits++
	l.stats.Bytes += int64(len(buf))
	return first, last, nil
}

// rollback restores the active segment to its last committed size after a
// failed write, so the file cannot end in a partial frame that later
// appends would bury (replay would stop at the garbage and silently drop
// them). If the truncate itself fails, the log fail-stops: every further
// append is rejected. Callers hold l.mu and roll nextSeq back to first.
func (l *Log) rollback(first uint64) {
	l.nextSeq = first
	tail := &l.segments[len(l.segments)-1]
	if err := os.Truncate(tail.path, tail.size); err != nil {
		l.failed = true
		return
	}
	if _, err := l.f.Seek(tail.size, io.SeekStart); err != nil {
		l.failed = true
	}
}

// Sync forces an fsync of the active segment (useful after NoSync appends).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.Syncs++
	return nil
}

// Replay calls fn for every intact record with Seq >= from, in sequence
// order. A torn frame at the tail of the newest segment ends replay cleanly;
// a corrupt frame anywhere else is an error. The payload passed to fn is
// only valid during the call.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()

	for i, seg := range segs {
		if seg.lastSeq != 0 && seg.lastSeq < from {
			continue
		}
		buf, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
			return fmt.Errorf("wal: %s: bad segment magic", seg.path)
		}
		data := buf[len(segMagic):]
		off := int64(len(segMagic))
		for len(data) > 0 {
			rec, n, ok := parseFrame(data)
			if !ok {
				if i != len(segs)-1 {
					return fmt.Errorf("wal: %s: corrupt frame at offset %d in non-final segment", seg.path, off)
				}
				return nil // torn tail: clean stop
			}
			if rec.Seq >= from {
				if err := fn(rec); err != nil {
					return err
				}
			}
			off += int64(n)
			data = data[n:]
		}
	}
	return nil
}

// LastSeq returns the sequence number of the most recently appended record
// (0 for an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// TruncateBefore removes every sealed segment whose records all have
// sequence numbers below seq — the space-reclaim step after a checkpoint at
// seq-1. The active segment is never removed.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	for i, seg := range l.segments {
		active := i == len(l.segments)-1
		if !active && seg.lastSeq != 0 && seg.lastSeq < seq && seg.firstSeq != 0 {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Segments = len(l.segments)
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment. The log is unusable afterward.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
