package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pvoronoi/internal/vfs"
)

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var out []Record
	err := l.Replay(from, func(r Record) error {
		out = append(out, Record{Seq: r.Seq, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("record-%d", i))
		typ := TypeInsert
		if i%3 == 0 {
			typ = TypeDelete
		}
		first, last, err := l.Append(Entry{Type: typ, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if first != last || first != uint64(i+1) {
			t.Fatalf("append %d: got seq %d..%d", i, first, last)
		}
		want = append(want, Record{Seq: first, Type: typ, Payload: payload})
	}
	got := collect(t, l, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Partial replay honors the lower bound.
	tail := collect(t, l, 40)
	if len(tail) != 11 || tail[0].Seq != 40 {
		t.Fatalf("replay from 40: got %d records starting at %d", len(tail), tail[0].Seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 50 {
		t.Fatalf("reopened LastSeq = %d, want 50", l2.LastSeq())
	}
	first, _, err := l2.Append(Entry{Type: TypeInsert, Payload: []byte("after reopen")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 51 {
		t.Fatalf("append after reopen got seq %d, want 51", first)
	}
	if got := collect(t, l2, 1); len(got) != 51 {
		t.Fatalf("replay after reopen: %d records, want 51", len(got))
	}
}

func TestGroupCommitOneFsyncPerBatch(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := make([]Entry, 32)
	for i := range batch {
		batch[i] = Entry{Type: TypeInsert, Payload: []byte{byte(i)}}
	}
	first, last, err := l.Append(batch...)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 32 {
		t.Fatalf("batch seqs %d..%d, want 1..32", first, last)
	}
	st := l.Stats()
	if st.Syncs != 1 || st.Commits != 1 || st.Appends != 32 {
		t.Fatalf("stats after one batch: %+v", st)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if got := collect(t, l, 1); len(got) != 10 {
		t.Fatalf("replay across segments: %d records, want 10", len(got))
	}
	l.Close()

	// Reopen across segments preserves everything.
	l2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 1); len(got) != 10 {
		t.Fatalf("replay after reopen: %d records, want 10", len(got))
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte(fmt.Sprintf("rec-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Cut the last record in half — a crash mid-write.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	got := collect(t, l2, 1)
	if len(got) != 4 {
		t.Fatalf("replay after torn tail: %d records, want 4", len(got))
	}
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq after torn tail = %d, want 4", l2.LastSeq())
	}
	// Appends after repair reuse the discarded sequence number and replay
	// cleanly.
	first, _, err := l2.Append(Entry{Type: TypeDelete, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 5 {
		t.Fatalf("post-repair append seq %d, want 5", first)
	}
	if got := collect(t, l2, 1); len(got) != 5 {
		t.Fatalf("replay after repair+append: %d records, want 5", len(got))
	}
	l2.Close()
}

func TestCorruptMidLogIsError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: make([]byte, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Flip a payload byte in the first (sealed) segment.
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentSize: 64}); err == nil {
		t.Fatal("open accepted a corrupt sealed segment")
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: make([]byte, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats().Segments
	if before < 4 {
		t.Fatalf("need several segments, got %d", before)
	}
	if err := l.TruncateBefore(8); err != nil {
		t.Fatal(err)
	}
	after := l.Stats().Segments
	if after >= before {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", before, after)
	}
	got := collect(t, l, 8)
	if len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("replay from 8 after truncate: %d records starting at %d", len(got), got[0].Seq)
	}
	// Appends still work after truncation.
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("y")}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 0 {
		t.Fatalf("empty log LastSeq = %d", l.LastSeq())
	}
	if got := collect(t, l, 1); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
	if _, _, err := l.Append(); err != nil {
		t.Fatalf("empty append: %v", err)
	}
}

func TestAppendFailStopsAfterWriteError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the file descriptor to force a write error (as EIO or a
	// full disk would).
	l.f.Close()
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("doomed")}); err == nil {
		t.Fatal("append on a broken descriptor succeeded")
	}
	// The log must now refuse appends rather than risk writing acknowledged
	// records after a partial frame.
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("after")}); err == nil {
		t.Fatal("append accepted on a failed log")
	}
	// The committed prefix is still intact on disk.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 1); len(got) != 1 || string(got[0].Payload) != "ok" {
		t.Fatalf("committed prefix damaged: %+v", got)
	}
}

// TestCorruptMiddleRecordIntactTail is the bit-rot case: a CRC-corrupt frame
// in the middle of the final segment with intact frames behind it. Replay
// must stop at the first bad record — but the intact records stranded beyond
// it are counted into OpenStats.DroppedRecords so the loss is loud.
func TestCorruptMiddleRecordIntactTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		// 5-byte payloads keep every frame the same size: 8 header + 14 body.
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte(fmt.Sprintf("rec-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	const frameSize = 8 + 1 + 8 + 5 // header + type + seq + payload
	// Flip the first payload byte of the third record (seq 3), leaving
	// records 4-6 intact behind it. The payload sits frameHdr bytes into the
	// frame (length, crc, type, seq).
	pos := len(segMagic) + 2*frameSize + frameHdr
	buf[pos] ^= 0xff
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with mid-segment corruption: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 1)
	if len(got) != 2 {
		t.Fatalf("replay returned %d records, want 2 (stop at first bad record)", len(got))
	}
	st := l2.OpenStats()
	if st.DroppedRecords != 3 {
		t.Fatalf("DroppedRecords = %d, want 3 (the intact records beyond the rot)", st.DroppedRecords)
	}
	if want := int64(4 * frameSize); st.TornBytes != want {
		t.Fatalf("TornBytes = %d, want %d", st.TornBytes, want)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l2.LastSeq())
	}
	// The segment was truncated at the bad frame, so appends continue cleanly.
	if first, _, err := l2.Append(Entry{Type: TypeInsert, Payload: []byte("after")}); err != nil || first != 3 {
		t.Fatalf("post-repair append: seq %d, err %v", first, err)
	}
	if got := collect(t, l2, 1); len(got) != 3 {
		t.Fatalf("replay after repair+append: %d records, want 3", len(got))
	}
}

// TestRearmAfterDiskFull injects ENOSPC mid-append, checks the log goes
// unhealthy while preserving the committed prefix, and proves Rearm restores
// service on a fresh segment once space is back.
func TestRearmAfterDiskFull(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range []string{"a", "b"} {
		if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	ffs.SetWriteBudget(0)
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("doomed")}); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("append under ENOSPC: %v", err)
	}
	if l.Healthy() {
		t.Fatal("Healthy() true after a failed append")
	}
	ffs.ClearFaults()
	if err := l.Rearm(); err != nil {
		t.Fatalf("rearm: %v", err)
	}
	if !l.Healthy() {
		t.Fatal("Healthy() false after Rearm")
	}
	first, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("c")})
	if err != nil {
		t.Fatalf("append after rearm: %v", err)
	}
	if first != 3 {
		t.Fatalf("post-rearm seq %d, want 3", first)
	}
	got := collect(t, l, 1)
	if len(got) != 3 || string(got[2].Payload) != "c" {
		t.Fatalf("replay after rearm: %+v", got)
	}
	// Rearm rotated onto a fresh segment rather than reusing the old file.
	if segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal")); len(segs) != 2 {
		t.Fatalf("expected 2 segments after rearm, got %d", len(segs))
	}
}

// TestRearmAfterFsyncPoison is the fsyncgate scenario: a failed fsync means
// the file's durability is unknowable, so recovery must rotate to a new file
// and never retry the failed fsync. FaultFS poisons the file after the armed
// sync fails; Rearm succeeds because it abandons that file entirely.
func TestRearmAfterFsyncPoison(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	ffs.PoisonSync("seg-")
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("doomed")}); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append with poisoned fsync: %v", err)
	}
	if l.Healthy() {
		t.Fatal("Healthy() true after fsync failure")
	}
	// The poisoned file is still poisoned — but Rearm abandons it.
	if err := l.Rearm(); err != nil {
		t.Fatalf("rearm: %v", err)
	}
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("b")}); err != nil {
		t.Fatalf("append after rearm: %v", err)
	}
	got := collect(t, l, 1)
	if len(got) != 2 || string(got[0].Payload) != "a" || string(got[1].Payload) != "b" {
		t.Fatalf("replay after fsync-poison rearm: %+v", got)
	}
}

// TestSealedOpenTruncatesUncommittedTail simulates a group commit torn
// exactly on a frame boundary: the batch's update frames reached disk but
// the sealing TypeCommit did not. A sealed Open must truncate those frames —
// otherwise the next batch appends after them and the next replay would
// buffer them into the same pending window as that batch's commit,
// resurrecting a batch that was never acknowledged.
func TestSealedOpenTruncatesUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One sealed batch, then two update frames with no commit behind them
	// (the torn write: byte-identical to a crash that lost the commit frame).
	if _, _, err := l.Append(
		Entry{Type: TypeInsert, Payload: []byte("a")},
		Entry{Type: TypeCommit},
	); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(
		Entry{Type: TypeInsert, Payload: []byte("b")},
		Entry{Type: TypeInsert, Payload: []byte("c")},
	); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sealed: true})
	if err != nil {
		t.Fatal(err)
	}
	st := l2.OpenStats()
	if st.UncommittedRecords != 2 {
		t.Fatalf("UncommittedRecords = %d, want 2", st.UncommittedRecords)
	}
	if st.TornBytes == 0 {
		t.Fatal("TornBytes = 0, want the truncated frames' bytes")
	}
	got := collect(t, l2, 1)
	if len(got) != 2 || got[1].Type != TypeCommit {
		t.Fatalf("after sealed open replay has %d records (%+v), want the sealed batch only", len(got), got)
	}
	// The truncated sequences are reused: the log ends at its last barrier.
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l2.LastSeq())
	}
	first, _, err := l2.Append(Entry{Type: TypeInsert, Payload: []byte("d")}, Entry{Type: TypeCommit})
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("append after sealed truncation got seq %d, want 3", first)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening sealed again finds a clean barrier-terminated log.
	l3, err := Open(dir, Options{Sealed: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if st := l3.OpenStats(); st.UncommittedRecords != 0 || st.TornBytes != 0 {
		t.Fatalf("second sealed open repaired again: %+v", st)
	}
	if got := collect(t, l3, 1); len(got) != 4 {
		t.Fatalf("final replay has %d records, want 4", len(got))
	}
}

// TestSealedOpenCheckpointIsBarrier: a TypeCheckpoint record seals the log
// the same way a commit does — only frames after the last barrier of either
// kind are truncated.
func TestSealedOpenCheckpointIsBarrier(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(Entry{Type: TypeCheckpoint, Payload: []byte("ckpt-1")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("stranded")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sealed: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.OpenStats(); st.UncommittedRecords != 1 {
		t.Fatalf("UncommittedRecords = %d, want 1", st.UncommittedRecords)
	}
	got := collect(t, l2, 1)
	if len(got) != 1 || got[0].Type != TypeCheckpoint {
		t.Fatalf("replay after sealed open: %+v, want just the checkpoint", got)
	}
}

// TestSealedOpenWhollyUnsealedSegment: a newest segment holding only
// barrier-less frames is emptied back to its magic header and the sequence
// space rewinds to the previous segment's tail.
func TestSealedOpenWhollyUnsealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the rotation threshold with a sealed batch, then strand an
	// unsealed frame in the fresh segment.
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: make([]byte, 80)}, Entry{Type: TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(Entry{Type: TypeInsert, Payload: []byte("stranded")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sealed: true, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.OpenStats(); st.UncommittedRecords != 1 {
		t.Fatalf("UncommittedRecords = %d, want 1", st.UncommittedRecords)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (the commit)", l2.LastSeq())
	}
	if got := collect(t, l2, 1); len(got) != 2 {
		t.Fatalf("replay has %d records, want 2", len(got))
	}
}
