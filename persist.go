package pvoronoi

import (
	"io"

	"pvoronoi/internal/pvindex"
)

// Save serializes the built index — page store, octree structure, hash
// directory, and SE configuration — to w. The database itself is not
// included; supply the same object set to LoadIndex.
func (ix *Index) Save(w io.Writer) error {
	return ix.inner.SaveTo(w)
}

// LoadIndex reconstructs a previously saved index over db. The database
// must contain exactly the objects the index was built on (validated on
// load). The loaded index answers queries identically to the original and
// continues to support incremental Insert/Delete.
func LoadIndex(r io.Reader, db *DB) (*Index, error) {
	inner, err := pvindex.LoadFrom(r, db)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// BuildParallel constructs the index like Build but computes UBRs with the
// given number of workers (GOMAXPROCS when workers <= 0). Results are
// identical to Build; construction is near-linearly faster on multicore
// machines — the bulk-loading direction from the paper's conclusion.
func BuildParallel(db *DB, opts Options, workers int) (*Index, error) {
	inner, err := pvindex.BuildParallel(db, opts.toConfig(), workers)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}
