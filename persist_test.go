package pvoronoi

import (
	"bytes"
	"testing"
)

func TestPublicSaveLoad(t *testing.T) {
	db := buildSmallDB(t, 60, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	q := Point{500, 500}
	a, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("loaded index returned %d results, original %d", len(b), len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Prob != b[i].Prob {
			t.Fatalf("result %d differs after load", i)
		}
	}
}

func TestPublicBuildParallel(t *testing.T) {
	db := buildSmallDB(t, 80, false)
	serial, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildParallel(db, testOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		a, _ := serial.UBR(o.ID)
		b, _ := parallel.UBR(o.ID)
		if !a.Equal(b) {
			t.Fatalf("object %d: UBRs differ between serial and parallel build", o.ID)
		}
	}
}
