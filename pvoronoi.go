// Package pvoronoi is a Go implementation of the PV-index — the
// Voronoi-based access method for probabilistic nearest neighbor queries
// (PNNQ) over multi-dimensional uncertain databases from Zhang et al.,
// "Voronoi-based Nearest Neighbor Search for Multi-Dimensional Uncertain
// Databases", ICDE 2013.
//
// An uncertain object is a rectangular uncertainty region plus a discrete
// pdf of weighted instance points. The Possible Voronoi cell (PV-cell) of an
// object is the region of space where it has non-zero probability of being
// a query point's nearest neighbor. The PV-index stores, per object, an
// Uncertain Bounding Rectangle (UBR) that conservatively contains its
// PV-cell — computed by the Shrink-and-Expand (SE) algorithm — organized in
// an octree with disk-resident leaves plus an extendible-hash secondary
// index, so a PNNQ retrieves its candidates with a single leaf access.
//
// Basic usage:
//
//	db := pvoronoi.NewDB(pvoronoi.NewRect(
//		pvoronoi.Point{0, 0}, pvoronoi.Point{10000, 10000}))
//	_ = db.Add(&pvoronoi.Object{ID: 1, Region: region, Instances: pdf})
//	ix, _ := pvoronoi.Build(db, pvoronoi.DefaultOptions())
//	results, _ := ix.Query(pvoronoi.Point{420, 17})   // full PNNQ
//	cands, _ := ix.PossibleNN(pvoronoi.Point{420, 17}) // Step 1 only
//
// The index stays consistent with the database through ix.Insert and
// ix.Delete, which use the paper's incremental maintenance (orders of
// magnitude cheaper than rebuilding).
package pvoronoi

import (
	"pvoronoi/internal/core"
	"pvoronoi/internal/geom"
	"pvoronoi/internal/pagestore"
	"pvoronoi/internal/pnnq"
	"pvoronoi/internal/pvindex"
	"pvoronoi/internal/uncertain"
	"pvoronoi/internal/vfs"
)

// Point is a d-dimensional point.
type Point = geom.Point

// Rect is a d-dimensional axis-parallel rectangle.
type Rect = geom.Rect

// NewRect builds a rectangle from its lower-left and upper-right corners.
// It panics on inverted or dimension-mismatched corners.
func NewRect(lo, hi Point) Rect { return geom.NewRect(lo, hi) }

// ID identifies an object within a database.
type ID = uncertain.ID

// Instance is one weighted sample of an object's discrete pdf.
type Instance = uncertain.Instance

// Object is an uncertain object: an uncertainty region bounding all its
// possible attribute values, plus optional pdf instances.
type Object = uncertain.Object

// DB is an in-memory uncertain database (the set S of the paper).
type DB = uncertain.DB

// NewDB creates an empty database over the given domain rectangle.
func NewDB(domain Rect) *DB { return uncertain.NewDB(domain) }

// SampleUniform discretizes a uniform pdf over region into n equally
// weighted instances, using the given seed.
func SampleUniform(region Rect, n int, seed int64) []Instance {
	return uncertain.SampleInstances(region, uncertain.PDFUniform, n, newRand(seed))
}

// SampleGaussian discretizes a truncated Gaussian pdf (σ = side/4) over
// region into n equally weighted instances.
func SampleGaussian(region Rect, n int, seed int64) []Instance {
	return uncertain.SampleInstances(region, uncertain.PDFGaussian, n, newRand(seed))
}

// CSetStrategy selects how SE bounds the set of objects it reasons about.
type CSetStrategy = core.CSetStrategy

// C-set strategies (§V-A of the paper).
const (
	// CSetAll uses the whole database — correct but impractically slow.
	CSetAll = core.CSetAll
	// CSetFS (Fixed Selection) uses the K nearest objects by center.
	CSetFS = core.CSetFS
	// CSetIS (Incremental Selection) browses neighbors until every domain
	// quadrant has KPartition of them — the paper's default.
	CSetIS = core.CSetIS
)

// Options configures index construction (Table I parameters).
type Options struct {
	// Delta is the SE termination threshold Δ (default 1 domain unit).
	Delta float64
	// MMax bounds the recursive partitioning depth of the domination
	// count estimation (default 10).
	MMax int
	// Strategy is the chooseCSet implementation (default CSetIS).
	Strategy CSetStrategy
	// K is the C-set size for FS (default 200).
	K int
	// KPartition is IS's per-quadrant quota (default 10).
	KPartition int
	// KGlobal caps IS's neighbor examination (default 200).
	KGlobal int
	// MemBudget bounds the primary index's in-memory non-leaf structure
	// in bytes (default 5 MB).
	MemBudget int
	// PageSize is the simulated disk page size in bytes (default 4096).
	PageSize int
	// RecordCacheSize bounds the index's decoded-record cache in entries
	// (0 = implementation default, negative = cache disabled). The cache
	// serves each query's Step-2 pdf fetch from memory for hot objects; it
	// is generation-tagged against the index's write epochs, so readers on
	// any snapshot version never observe a stale record.
	RecordCacheSize int
	// CheckpointRetain is how many checkpoints the durable layer keeps on
	// disk (0 = default 2, minimum 1). Retaining more than one means a
	// corrupt or torn newest checkpoint falls back to the previous one plus
	// a longer WAL replay instead of bricking the store; the WAL is only
	// trimmed below the oldest retained checkpoint.
	CheckpointRetain int
	// FS is the filesystem the durable layer runs on (nil = the real OS).
	// Tests swap in a vfs.FaultFS to inject torn writes, fsync failures,
	// disk-full, and bit rot deterministically.
	FS vfs.FS
	// Refine configures the budget-aware UBR refinement subsystem, which
	// spends a bounded extra SE budget shrinking the fattest adjacency hubs
	// after construction and incrementally after batches. The zero value
	// enables it with the documented defaults; set Refine.Disabled to opt
	// out. Refinement never changes a query result — only the tightness of
	// stored UBRs and therefore the cost of graph-expansion retrieval.
	Refine RefineOptions
}

// RefineOptions configures the UBR refinement budget (see
// pvindex.RefineConfig for the per-field defaults).
type RefineOptions = pvindex.RefineConfig

// DefaultOptions returns the paper's default parameters.
func DefaultOptions() Options {
	se := core.DefaultOptions()
	return Options{
		Delta:      se.Delta,
		MMax:       se.MaxDepth,
		Strategy:   se.Strategy,
		K:          se.K,
		KPartition: se.KPartition,
		KGlobal:    se.KGlobal,
		MemBudget:  5 << 20,
		PageSize:   pagestore.DefaultPageSize,
	}
}

func (o Options) toConfig() pvindex.Config {
	cfg := pvindex.DefaultConfig()
	cfg.Store = pagestore.New(o.PageSize)
	if o.MemBudget > 0 {
		cfg.MemBudget = o.MemBudget
	}
	if o.Delta > 0 {
		cfg.SE.Delta = o.Delta
	}
	if o.MMax > 0 {
		cfg.SE.MaxDepth = o.MMax
	}
	cfg.SE.Strategy = o.Strategy
	if o.K > 0 {
		cfg.SE.K = o.K
	}
	if o.KPartition > 0 {
		cfg.SE.KPartition = o.KPartition
	}
	if o.KGlobal > 0 {
		cfg.SE.KGlobal = o.KGlobal
	}
	cfg.RecordCacheSize = o.RecordCacheSize
	cfg.Refine = o.Refine
	return cfg
}

// Candidate is a PNNQ Step-1 result: an object with non-zero probability of
// being the nearest neighbor.
type Candidate = pvindex.Candidate

// Result is a PNNQ Step-2 result: an object and its qualification
// probability.
type Result = pnnq.Result

// Index is a built PV-index bound to a database.
//
// An Index is safe for concurrent use and serves reads lock-free through
// epoch-based MVCC: any number of goroutines may run Query, QueryBatch,
// PossibleNN and the extension queries in parallel while other goroutines
// interleave Insert, Delete and ApplyBatch. Every query pins an immutable
// snapshot version with two atomic operations — it never takes a lock and
// never waits for a writer, however large the concurrent batch. Writers
// build the next version copy-on-write and publish it with a single atomic
// pointer swap; superseded versions are reclaimed once their last in-flight
// reader drains. Each query observes the index atomically — never a
// half-applied update.
type Index struct {
	inner *pvindex.Index
}

// Build constructs a PV-index over db. The database is adopted as the first
// snapshot version; subsequent updates publish new versions, so read the
// current data through Index.DB(), Len, UBR and the query methods rather
// than the original pointer.
func Build(db *DB, opts Options) (*Index, error) {
	inner, err := pvindex.Build(db, opts.toConfig())
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// PossibleNN evaluates PNNQ Step 1: the exact set of objects whose
// probability of being q's nearest neighbor is non-zero.
func (ix *Index) PossibleNN(q Point) ([]Candidate, error) {
	return ix.inner.PossibleNN(q)
}

// QueryCost reports the per-query cost of one evaluation: the number of
// Step-1 candidates and the primary-index leaf pages read to retrieve them
// (the leaf-I/O metric of the paper's Figs. 9(c)/9(g)). Unlike the global
// IO counters, it is attributed exactly to the query that incurred it, so
// it stays meaningful when many queries run concurrently.
type QueryCost struct {
	Candidates int
	LeafIO     int
	// CacheHits/CacheMisses are this query's record-cache outcomes for the
	// Step-2 pdf fetch (one lookup per candidate; both zero for Step-1-only
	// calls like PossibleNNWithCost).
	CacheHits   int
	CacheMisses int
}

// Query evaluates the full PNNQ: Step 1 through the index, then Step 2
// qualification probabilities from the stored pdfs, sorted by decreasing
// probability. Objects without stored instances are skipped in Step 2.
func (ix *Index) Query(q Point) ([]Result, error) {
	res, _, err := ix.QueryWithCost(q)
	return res, err
}

// QueryWithCost is Query plus the per-query cost breakdown. Step 1 and the
// candidate data fetch happen atomically under the index's read lock; the
// Step-2 probability computation runs outside it.
func (ix *Index) QueryWithCost(q Point) ([]Result, QueryCost, error) {
	snap, err := ix.inner.Snapshot(q)
	if err != nil {
		return nil, QueryCost{}, err
	}
	cost := QueryCost{
		Candidates:  len(snap.Candidates),
		LeafIO:      snap.LeafIO,
		CacheHits:   snap.CacheHits,
		CacheMisses: snap.CacheMisses,
	}
	return pnnq.Compute(snapshotData(snap), q), cost, nil
}

// QueryVerified evaluates the PNNQ like Query but runs Step 2 through the
// probabilistic-verifier shortcut (Cheng et al., ICDE 2008): cheap
// probability bounds settle most candidates, and the exact product runs
// only for those whose bounds stay wider than eps. Per-object probabilities
// differ from Query by at most eps (identical at eps = 0).
func (ix *Index) QueryVerified(q Point, eps float64) ([]Result, error) {
	res, _, err := ix.QueryVerifiedWithCost(q, eps)
	return res, err
}

// QueryVerifiedWithCost is QueryVerified plus the per-query cost breakdown.
func (ix *Index) QueryVerifiedWithCost(q Point, eps float64) ([]Result, QueryCost, error) {
	snap, err := ix.inner.Snapshot(q)
	if err != nil {
		return nil, QueryCost{}, err
	}
	cost := QueryCost{
		Candidates:  len(snap.Candidates),
		LeafIO:      snap.LeafIO,
		CacheHits:   snap.CacheHits,
		CacheMisses: snap.CacheMisses,
	}
	return pnnq.ComputeVerified(snapshotData(snap), q, eps), cost, nil
}

// snapshotData adapts an atomic index snapshot to pnnq's candidate input.
func snapshotData(snap *pvindex.QuerySnapshot) []pnnq.CandidateData {
	data := make([]pnnq.CandidateData, len(snap.Candidates))
	for i, c := range snap.Candidates {
		data[i] = pnnq.CandidateData{ID: c.ID, Instances: snap.Instances[i]}
	}
	return data
}

// PossibleNNWithCost is PossibleNN plus the per-query cost breakdown. It
// skips the Step-2 data fetch, so its leaf I/O is the pure Step-1 cost.
func (ix *Index) PossibleNNWithCost(q Point) ([]Candidate, QueryCost, error) {
	cands, leafIO, err := ix.inner.PossibleNNIO(q)
	if err != nil {
		return nil, QueryCost{}, err
	}
	return cands, QueryCost{Candidates: len(cands), LeafIO: leafIO}, nil
}

// UpdateStats reports the cost of one incremental maintenance operation:
// how many objects were examined and recomputed, and where the time went.
type UpdateStats = pvindex.UpdateStats

// Insert adds o to the database and incrementally refreshes the index.
// The update builds a new snapshot version and publishes it atomically:
// in-flight queries keep reading the previous version undisturbed, and
// queries started after the publish observe the fully applied update.
func (ix *Index) Insert(o *Object) error {
	_, err := ix.inner.Insert(o)
	return err
}

// InsertWithStats is Insert plus the maintenance cost breakdown.
func (ix *Index) InsertWithStats(o *Object) (UpdateStats, error) {
	return ix.inner.Insert(o)
}

// Delete removes the object with the given ID from the database and
// incrementally refreshes the index. Like Insert, it publishes a new
// version without ever blocking readers.
func (ix *Index) Delete(id ID) error {
	_, err := ix.inner.Delete(id)
	return err
}

// DeleteWithStats is Delete plus the maintenance cost breakdown.
func (ix *Index) DeleteWithStats(id ID) (UpdateStats, error) {
	return ix.inner.Delete(id)
}

// Len returns the number of indexed objects in the current version. Safe
// to call while writers are running (it reads a pinned snapshot).
func (ix *Index) Len() int {
	n := 0
	_ = ix.inner.View(func(db *uncertain.DB) error {
		n = db.Len()
		return nil
	})
	return n
}

// UBR returns the stored Uncertain Bounding Rectangle of an object. The
// rectangle may share memory with the index's record cache — treat it as
// read-only.
func (ix *Index) UBR(id ID) (Rect, bool) { return ix.inner.UBR(id) }

// DB returns the current version's database. The snapshot it points at is
// immutable — writers publish new versions instead of mutating it — so
// reading it is always safe, but the pointer advances with every applied
// update; capture it once when several reads must agree.
func (ix *Index) DB() *DB { return ix.inner.DB() }

// Epoch returns the index's published write epoch: 1 after construction,
// incremented by every applied update batch. Lock-free.
func (ix *Index) Epoch() uint64 { return ix.inner.Epoch() }

// MVCCStats reports the snapshot lifecycle's gauges: the published epoch,
// in-flight pinned readers, versions awaiting reclamation, and versions
// reclaimed so far.
type MVCCStats = pvindex.MVCCStats

// MVCC returns the snapshot lifecycle gauges (see MVCCStats).
func (ix *Index) MVCC() MVCCStats { return ix.inner.MVCC() }

// IOStats reports the simulated disk I/O counters accumulated so far.
type IOStats struct {
	Reads, Writes int64
}

// IO returns the index's accumulated page I/O counts.
func (ix *Index) IO() IOStats {
	s := ix.inner.Store().Stats()
	return IOStats{Reads: s.Reads, Writes: s.Writes}
}

// RecordCacheStats reports the decoded-record cache's global hit/miss
// counters and residency (per-query counts come with QueryWithCost).
type RecordCacheStats = pvindex.RecordCacheStats

// RecordCache returns the index's accumulated record-cache statistics.
func (ix *Index) RecordCache() RecordCacheStats {
	return ix.inner.RecordCacheStats()
}

// ResetIO zeroes the I/O counters (useful around measured query batches).
func (ix *Index) ResetIO() { ix.inner.Store().ResetStats() }

// RefineCounters reports the refinement subsystem's lifetime totals: rows
// refined, clip passes run, and the domination-test budget spent.
type RefineCounters = pvindex.RefineCounters

// RefineCounters returns the refinement subsystem's lifetime totals.
func (ix *Index) RefineCounters() RefineCounters { return ix.inner.RefineCounters() }

// Refine runs one explicit budget-aware UBR refinement pass (hub selection
// across the whole adjacency graph) and publishes the result as a new
// version. It runs even when Options.Refine.Disabled — the call is the
// opt-in. Query results are unchanged; only retrieval cost improves.
func (ix *Index) Refine() error {
	_, err := ix.inner.Refine()
	return err
}
