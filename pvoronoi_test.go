package pvoronoi

import (
	"math"
	"math/rand"
	"testing"

	"pvoronoi/internal/bruteforce"
)

func buildSmallDB(t *testing.T, n int, withPDF bool) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	db := NewDB(NewRect(Point{0, 0}, Point{1000, 1000}))
	for i := 0; i < n; i++ {
		lo := Point{rng.Float64() * 950, rng.Float64() * 950}
		region := NewRect(lo, Point{lo[0] + 5 + rng.Float64()*30, lo[1] + 5 + rng.Float64()*30})
		o := &Object{ID: ID(i), Region: region}
		if withPDF {
			o.Instances = SampleUniform(region, 30, int64(i))
		}
		if err := db.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func testOptions() Options {
	o := DefaultOptions()
	o.K = 20
	o.KPartition = 3
	o.KGlobal = 40
	o.MemBudget = 1 << 18
	return o
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := buildSmallDB(t, 80, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}

		cands, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.PossibleNN(db, q)
		if len(cands) != len(want) {
			t.Fatalf("Step 1: %d candidates, want %d", len(cands), len(want))
		}

		results, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			sum += r.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		// Results must be sorted by decreasing probability.
		for i := 1; i < len(results); i++ {
			if results[i].Prob > results[i-1].Prob {
				t.Fatal("results not sorted")
			}
		}
	}
}

func TestQueryVerifiedMatchesQuery(t *testing.T) {
	db := buildSmallDB(t, 70, true)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 30; iter++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		exact, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		verified, err := ix.QueryVerified(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) != len(verified) {
			t.Fatalf("eps=0: %d vs %d results", len(verified), len(exact))
		}
		for i := range exact {
			if exact[i].ID != verified[i].ID || math.Abs(exact[i].Prob-verified[i].Prob) > 1e-12 {
				t.Fatalf("eps=0 deviates at position %d", i)
			}
		}
		loose, err := ix.QueryVerified(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		exactMap := map[ID]float64{}
		for _, r := range exact {
			exactMap[r.ID] = r.Prob
		}
		for _, r := range loose {
			if math.Abs(r.Prob-exactMap[r.ID]) > 0.1+1e-12 {
				t.Fatalf("eps=0.1: object %d off by %g", r.ID, math.Abs(r.Prob-exactMap[r.ID]))
			}
		}
	}
}

func TestPublicAPIUpdates(t *testing.T) {
	db := buildSmallDB(t, 60, false)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	region := NewRect(Point{480, 480}, Point{520, 520})
	if err := ix.Insert(&Object{ID: 999, Region: region}); err != nil {
		t.Fatal(err)
	}
	cands, err := ix.PossibleNN(Point{500, 500})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		if c.ID == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object not a possible NN of its own center")
	}
	if err := ix.Delete(999); err != nil {
		t.Fatal(err)
	}
	cands, _ = ix.PossibleNN(Point{500, 500})
	for _, c := range cands {
		if c.ID == 999 {
			t.Fatal("deleted object still returned")
		}
	}
	// Consistency with brute force after updates.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got, err := ix.PossibleNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.PossibleNN(ix.DB(), q)
		if len(got) != len(want) {
			t.Fatalf("after updates: %d vs %d", len(got), len(want))
		}
	}
}

func TestPublicAPIUBRAndIO(t *testing.T) {
	db := buildSmallDB(t, 50, false)
	ix, err := Build(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ubr, ok := ix.UBR(1)
	if !ok {
		t.Fatal("UBR missing")
	}
	if !ubr.ContainsRect(db.Get(1).Region) {
		t.Fatal("UBR does not contain the region")
	}
	ix.ResetIO()
	if _, err := ix.PossibleNN(Point{500, 500}); err != nil {
		t.Fatal(err)
	}
	io := ix.IO()
	if io.Reads == 0 {
		t.Fatal("no I/O counted")
	}
	if io.Writes != 0 {
		t.Fatal("query should not write")
	}
}

func TestSampleHelpers(t *testing.T) {
	region := NewRect(Point{0, 0}, Point{10, 10})
	for _, ins := range [][]Instance{
		SampleUniform(region, 100, 1),
		SampleGaussian(region, 100, 1),
	} {
		if len(ins) != 100 {
			t.Fatalf("len=%d", len(ins))
		}
		var sum float64
		for _, in := range ins {
			if !region.Contains(in.Pos) {
				t.Fatal("instance outside region")
			}
			sum += in.Prob
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sum=%g", sum)
		}
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.Delta != 1 || o.MMax != 10 || o.K != 200 || o.KPartition != 10 || o.KGlobal != 200 {
		t.Fatalf("defaults drifted from Table I: %+v", o)
	}
	if o.Strategy != CSetIS {
		t.Fatal("default strategy should be IS")
	}
	if o.MemBudget != 5<<20 || o.PageSize != 4096 {
		t.Fatalf("resource defaults: %+v", o)
	}
}
