package pvoronoi

import "math/rand"

// newRand builds a seeded PRNG for the sampling helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
