package pvoronoi

import (
	"pvoronoi/internal/pvindex"
)

// Op selects the kind of one batched write operation.
type Op = pvindex.Op

// Write operation kinds.
const (
	// OpInsert adds Update.Object.
	OpInsert = pvindex.OpInsert
	// OpDelete removes the object with Update.ID.
	OpDelete = pvindex.OpDelete
)

// Update is one operation of a write batch: an insert carrying an object,
// or a delete carrying an ID.
type Update = pvindex.Update

// ErrWAL marks write-ahead-log failures surfaced by the update path (disk
// full, I/O error) — server-side durability faults, not invalid requests.
var ErrWAL = pvindex.ErrWAL

// InsertOp wraps an object as a batch insert operation.
func InsertOp(o *Object) Update { return Update{Op: OpInsert, Object: o} }

// DeleteOp wraps an ID as a batch delete operation.
func DeleteOp(id ID) Update { return Update{Op: OpDelete, ID: id} }

// ApplyBatch applies a mixed batch of inserts and deletes as one group
// commit: the expensive UBR computations are staged against the published
// snapshot (in parallel, while queries keep running), the whole batch is
// logged to the write-ahead log with a single fsync when one is attached
// (durable mode), and all updates apply to a copy-on-write working version
// that publishes with one atomic pointer swap — readers never block and
// never observe a partial batch. Per-op maintenance stats return
// positionally.
//
// Validation is all-or-nothing: a duplicate insert ID or unknown delete ID
// anywhere in the batch fails it before anything is logged or applied.
// Later ops see earlier ops' effects, so a delete followed by an insert of
// the same ID is one atomic replacement.
func (ix *Index) ApplyBatch(ups []Update) ([]UpdateStats, error) {
	return ix.inner.ApplyBatch(ups)
}

// InsertBatch adds all objects as one group commit (see ApplyBatch). It is
// the amortized alternative to calling Insert in a loop: one published
// version and one WAL fsync for the whole batch instead of one each per
// object.
func (ix *Index) InsertBatch(objs []*Object) ([]UpdateStats, error) {
	ups := make([]Update, len(objs))
	for i, o := range objs {
		ups[i] = Update{Op: OpInsert, Object: o}
	}
	return ix.inner.ApplyBatch(ups)
}

// DeleteBatch removes all the given IDs as one group commit (see
// ApplyBatch).
func (ix *Index) DeleteBatch(ids []ID) ([]UpdateStats, error) {
	ups := make([]Update, len(ids))
	for i, id := range ids {
		ups[i] = Update{Op: OpDelete, ID: id}
	}
	return ix.inner.ApplyBatch(ups)
}

// WALSeq returns the sequence number of the last write-ahead-log record
// the index has applied (0 when no WAL is attached or nothing was logged).
func (ix *Index) WALSeq() uint64 { return ix.inner.WALSeq() }
